package microcode

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/memory"
)

// Adapter presents the microcoded controller behind the same operations
// as memory.Controller, so the two implementations can be driven with
// identical sequences and compared bit for bit.
type Adapter struct {
	C *Controller
}

// NewAdapter wraps a fresh microcoded controller.
func NewAdapter() *Adapter { return &Adapter{C: New()} }

// Enqueue runs the enqueue-control-block micro-routine.
func (a *Adapter) Enqueue(list, elem uint16) error {
	if elem == memory.Null {
		// Trusted kernel code never enqueues NULL (§A.5.2); the
		// behavioral controller rejects it at the interface and so does
		// the adapter.
		return fmt.Errorf("microcode: enqueue of NULL element on list %#04x", list)
	}
	_, err := a.C.Exec(bus.CmdEnqueue, []uint16{list, elem})
	return err
}

// First runs the first-control-block micro-routine.
func (a *Adapter) First(list uint16) uint16 {
	out, err := a.C.Exec(bus.CmdFirst, []uint16{list})
	if err != nil || len(out) != 1 {
		panic(fmt.Sprintf("microcode: first returned %v, %v", out, err))
	}
	return out[0]
}

// Dequeue runs the dequeue-control-block micro-routine; it reports
// whether the element was found.
func (a *Adapter) Dequeue(list, elem uint16) bool {
	out, err := a.C.Exec(bus.CmdDequeue, []uint16{list, elem})
	if err != nil || len(out) != 1 {
		panic(fmt.Sprintf("microcode: dequeue returned %v, %v", out, err))
	}
	return out[0] == 1
}

// Read runs the simple-read micro-routine.
func (a *Adapter) Read(addr uint16) uint16 {
	out, err := a.C.Exec(bus.CmdSimpleRead, []uint16{addr})
	if err != nil || len(out) != 1 {
		panic(fmt.Sprintf("microcode: read returned %v, %v", out, err))
	}
	return out[0]
}

// Write runs the write-two-bytes micro-routine.
func (a *Adapter) Write(addr, word uint16) {
	if _, err := a.C.Exec(bus.CmdWriteTwoBytes, []uint16{addr, word}); err != nil {
		panic(err)
	}
}

// PokeByte runs the write-byte micro-routine.
func (a *Adapter) PokeByte(addr uint16, b byte) {
	if _, err := a.C.Exec(bus.CmdWriteByte, []uint16{addr, uint16(b)}); err != nil {
		panic(err)
	}
}

// BlockTransfer registers a block request and returns the tag.
func (a *Adapter) BlockTransfer(addr, count uint16, dir memory.Dir) (memory.Tag, error) {
	if count == 0 {
		return 0, memory.ErrZeroCount
	}
	d := uint16(0)
	if dir == memory.WriteDir {
		d = 1
	}
	out, err := a.C.Exec(bus.CmdBlockTransfer, []uint16{addr, count, d})
	if err != nil {
		return 0, err
	}
	if len(out) != 1 {
		return 0, fmt.Errorf("microcode: block transfer returned %v", out)
	}
	if out[0] == RespBad {
		return 0, memory.ErrTableFull
	}
	return memory.Tag(out[0]), nil
}

// ReadData streams up to maxWords transfers of a read request,
// returning the bytes moved and completion.
func (a *Adapter) ReadData(t memory.Tag, maxWords int) (data []byte, done bool, err error) {
	remBefore, _, active := a.C.TagState(t)
	if !active {
		return nil, false, memory.ErrBadTag
	}
	out, err := a.C.Exec(bus.CmdBlockReadData, []uint16{uint16(t), uint16(maxWords)})
	if err != nil {
		return nil, false, err
	}
	if len(out) == 0 || out[0] != RespOK {
		return nil, false, memory.ErrBadTag
	}
	rem := int(remBefore)
	for _, w := range out[1:] {
		if rem >= 2 {
			data = append(data, byte(w>>8), byte(w))
			rem -= 2
		} else if rem == 1 {
			data = append(data, byte(w>>8))
			rem--
		}
	}
	_, _, stillActive := a.C.TagState(t)
	return data, !stillActive, nil
}

// WriteData streams bytes into a write request, reporting completion.
func (a *Adapter) WriteData(t memory.Tag, p []byte) (done bool, err error) {
	rem, _, active := a.C.TagState(t)
	if !active {
		return false, memory.ErrBadTag
	}
	if len(p) > int(rem) {
		// The §A.5 overrun condition; also verified against the
		// microcode's own detection in the tests.
		return false, memory.ErrOverrun
	}
	if len(p)%2 == 1 && len(p) != int(rem) {
		// The bus streams 16-bit words; a burst may only be odd when it
		// carries the final byte of an odd-length block (§5.3.1: "both
		// master and slave know the length of a block, [so] they can
		// recover gracefully from an odd-length block").
		return false, fmt.Errorf("microcode: odd-length burst before end of block")
	}
	var words []uint16
	for i := 0; i < len(p); {
		if i+1 < len(p) {
			words = append(words, uint16(p[i])<<8|uint16(p[i+1]))
			i += 2
		} else {
			words = append(words, uint16(p[i]))
			i++
		}
	}
	ops := append([]uint16{uint16(t), uint16(len(words))}, words...)
	out, err := a.C.Exec(bus.CmdBlockWriteData, ops)
	if err != nil {
		return false, err
	}
	if len(out) == 0 || out[0] != RespOK {
		return false, memory.ErrBadTag
	}
	if len(out) > 1 && out[1] == RespOverrun {
		return false, memory.ErrOverrun
	}
	_, _, stillActive := a.C.TagState(t)
	return !stillActive, nil
}

// --- bus.Backend ------------------------------------------------------------
//
// The adapter satisfies the smart bus's Backend interface, so the full
// bus stack (arbitration, grants, streaming) can execute every
// transaction through the actual microcode.

// ReadWord is the simple-read transaction for the bus backend.
func (a *Adapter) ReadWord(addr uint16) uint16 { return a.Read(addr) }

// WriteWord is the write-two-bytes transaction for the bus backend.
func (a *Adapter) WriteWord(addr, v uint16) { a.Write(addr, v) }

// SetByte is the write-byte transaction for the bus backend.
func (a *Adapter) SetByte(addr uint16, b byte) { a.PokeByte(addr, b) }

// RegisterBlock registers a block request; the owner is a diagnostics
// concept of the behavioral controller that the microcode does not
// track.
func (a *Adapter) RegisterBlock(addr, count uint16, dir memory.Dir, _ int) (memory.Tag, error) {
	return a.BlockTransfer(addr, count, dir)
}
