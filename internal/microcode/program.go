package microcode

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/memory"
)

// routine entry names. The command-to-entry mapping is held in a mapping
// PROM beside the control store (as in AMD 2910-class sequencers), so
// the dispatch costs no control-store bits; MAIN is the idle loop at
// address 0 that every routine branches back to.
const (
	rMain      = "MAIN"
	rRead      = "READ"
	rBlockXfer = "BT"
	rReadData  = "BRD"
	rWriteData = "BWD"
	rEnqueue   = "ENQ"
	rDequeue   = "DEQ"
	rFirst     = "FIRST"
	rWriteWord = "WW"
	rWriteByte = "WB"
)

// Sentinel response words (status protocol on the A/D lines). They fit
// the 7-bit immediate field and stay clear of the 4-bit tag namespace.
const (
	// RespBad is returned for an exhausted request table, an
	// unregistered or direction-mismatched tag, or an unknown command
	// (§A.5).
	RespBad uint16 = 0x7F
	// RespOverrun trails a block-write response that received data past
	// the registered count (§A.5.1).
	RespOverrun uint16 = 0x7E
	// RespOK leads a successful data-phase response.
	RespOK uint16 = 0x0000
)

// commandEntry is the mapping-PROM content: bus command to routine name.
var commandEntry = map[bus.Command]string{
	bus.CmdSimpleRead:     rRead,
	bus.CmdBlockTransfer:  rBlockXfer,
	bus.CmdBlockReadData:  rReadData,
	bus.CmdBlockWriteData: rWriteData,
	bus.CmdEnqueue:        rEnqueue,
	bus.CmdDequeue:        rDequeue,
	bus.CmdFirst:          rFirst,
	bus.CmdWriteTwoBytes:  rWriteWord,
	bus.CmdWriteByte:      rWriteByte,
}

// buildProgram assembles the controller microprogram: the §A.4
// micro-routines over the Figure A.2 data path.
func buildProgram() ([]Micro, map[string]int, error) {
	a := newAsm()

	// MAIN (A.4.1): the idle loop. The physical controller spins here
	// waiting for IS; the sequencer model treats a branch to MAIN as
	// transaction completion. One instruction keeps address 0 meaningful.
	a.routine(rMain)
	a.emit(pass(RZero).br(CAlways, rMain))

	// Shared epilogues: status word out, back to MAIN. The Imm field is
	// shared with the branch target, so the constants 0 and 1 come off
	// the ALU (pass zero; increment zero) and the sentinel emitters fall
	// through to an explicit return. EMITBAD is also the mapping PROM's
	// default entry for unknown commands (§A.5.3).
	a.label("EMIT0")
	a.emit(pass(RZero).emitBus().done())
	a.label("EMIT1")
	a.emit(op(AInc, RZero, RZero).emitBus().done())
	a.label("EMITOVR")
	a.emit(imm(uint8(RespOverrun)).emitBus())
	a.emit(pass(RZero).done())
	a.routine("EMITBAD")
	a.emit(imm(uint8(RespBad)).emitBus())
	a.emit(pass(RZero).done())

	// READ (A.4.8): simple word read. Address from the bus, data back.
	a.routine(rRead)
	a.emit(latch(RTmp))
	a.emit(pass(RTmp).mem(MRead))
	a.emit(pass(RMDR).emitBus().done())

	// WRITE two bytes / one byte (A.4.8).
	a.routine(rWriteWord)
	a.emit(latch(RTmp))
	a.emit(latch(RMDR))
	a.emit(pass(RTmp).mem(MWrite).done())

	a.routine(rWriteByte)
	a.emit(latch(RTmp))
	a.emit(latch(RMDR))
	a.emit(pass(RTmp).mem(MWriteByte).done())

	// ENQUEUE CONTROL BLOCK (A.4.5): the §5.1 Enqueue algorithm.
	a.routine(rEnqueue)
	a.emit(latch(RList))
	a.emit(latch(RElem))
	a.emit(pass(RList).mem(MRead))                   // MDR := M[list] (tail)
	a.emit(pass(RMDR).to(RTail).br(CZero, "ENQ_MT")) // tail := MDR; empty?
	a.emit(pass(RTail).mem(MRead))                   // MDR := tail->next (first)
	a.emit(pass(RElem).mem(MWrite))                  // elem->next := first (MDR holds it)
	a.emit(pass(RElem).to(RMDR))
	a.emit(pass(RTail).mem(MWrite)) // tail->next := elem
	a.label("ENQ_TL")
	a.emit(pass(RElem).to(RMDR))
	a.emit(pass(RList).mem(MWrite).done()) // list := elem
	a.label("ENQ_MT")
	a.emit(pass(RElem).to(RMDR))
	a.emit(pass(RElem).mem(MWrite).br(CAlways, "ENQ_TL")) // elem->next := elem

	// FIRST CONTROL BLOCK (A.4.6): dequeue the head, return it (or 0).
	a.routine(rFirst)
	a.emit(latch(RList))
	a.emit(pass(RList).mem(MRead))
	a.emit(pass(RMDR).to(RTail).br(CZero, "EMIT0")) // empty: return NULL
	a.emit(pass(RTail).mem(MRead))                  // MDR := tail->next
	a.emit(pass(RMDR).to(RFirst))                   // first := MDR
	a.emit(op(ASub, RTail, RFirst).br(CZero, "F_LAST"))
	a.emit(pass(RFirst).mem(MRead))                      // MDR := first->next
	a.emit(pass(RTail).mem(MWrite).br(CAlways, "F_OUT")) // tail->next := first->next
	a.label("F_LAST")
	a.emit(imm(0).to(RMDR))
	a.emit(pass(RList).mem(MWrite)) // list := NULL
	a.label("F_OUT")
	a.emit(pass(RFirst).emitBus().done())

	// DEQUEUE CONTROL BLOCK (A.4.7): remove an arbitrary element;
	// success status 1, absent element status 0 (a no-op).
	a.routine(rDequeue)
	a.emit(latch(RList))
	a.emit(latch(RElem))
	a.emit(pass(RList).mem(MRead))
	a.emit(pass(RMDR).to(RTail).br(CZero, "EMIT0"))
	a.emit(pass(RTail).to(RCurr))
	a.label("D_LOOP")
	a.emit(pass(RCurr).to(RPrev))
	a.emit(pass(RPrev).mem(MRead)) // MDR := prev->next
	a.emit(pass(RMDR).to(RCurr))
	a.emit(op(ASub, RCurr, RElem).br(CZero, "D_FOUND"))
	a.emit(op(ASub, RCurr, RTail).br(CNotZero, "D_LOOP"))
	a.emit(pass(RZero).br(CAlways, "EMIT0")) // wrapped to the tail: not found
	a.label("D_FOUND")
	a.emit(op(ASub, RCurr, RPrev).br(CZero, "D_ONE"))
	a.emit(pass(RElem).mem(MRead))  // MDR := elem->next
	a.emit(pass(RPrev).mem(MWrite)) // prev->next := elem->next
	a.emit(op(ASub, RTail, RElem).br(CNotZero, "EMIT1"))
	a.emit(pass(RPrev).to(RMDR))
	a.emit(pass(RList).mem(MWrite).br(CAlways, "EMIT1")) // tail removed: list := prev
	a.label("D_ONE")
	a.emit(imm(0).to(RMDR))
	a.emit(pass(RList).mem(MWrite).br(CAlways, "EMIT1")) // singleton: list := NULL

	// BLOCK TRANSFER (A.4.2): claim a free tag-table entry for
	// (address, count, direction) and return the tag.
	a.routine(rBlockXfer)
	a.emit(latch(RTmp))  // block address
	a.emit(latch(RCnt))  // byte count
	a.emit(latch(RCurr)) // direction: 0 read, 1 write
	a.emit(imm(0).to(RTag))
	a.emit(imm(uint8(memory.NumTags)).to(RFirst)) // table size for the scan bound
	a.label("BT_SCAN")
	// A free entry has flags == 0 (retirement clears the whole word).
	a.emit(pass(RTFlags).br(CZero, "BT_CLAIM"))
	a.emit(op(AInc, RTag, RZero).to(RTag))
	a.emit(op(ASub, RTag, RFirst).br(CNotZero, "BT_SCAN"))
	a.emit(pass(RZero).br(CAlways, "EMITBAD")) // table full (§A.5.1)
	a.label("BT_CLAIM")
	a.emit(pass(RTmp).to(RTAddr))
	a.emit(pass(RCnt).to(RTCount))
	a.emit(pass(RZero).to(RTDone))
	a.emit(op(AAdd, RCurr, RCurr).to(RCurr)) // direction << 1
	a.emit(op(AInc, RCurr, RZero).to(RCurr)) // | active
	a.emit(pass(RCurr).to(RTFlags))
	a.emit(pass(RTag).emitBus().done())

	// BLOCK READ DATA (A.4.3): stream up to a burst of words; retire the
	// tag when the block completes.
	a.routine(rReadData)
	a.emit(latch(RTag))
	a.emit(latch(RCnt)) // burst word limit
	// An active read request has flags == 1 exactly.
	a.emit(op(ADec, RTFlags, RZero).br(CNotZero, "EMITBAD"))
	a.emit(pass(RZero).emitBus()) // status: OK
	a.label("BRD_LOOP")
	a.emit(pass(RCnt).br(CZero, "BRD_END"))
	a.emit(op(ASub, RTCount, RTDone).to(RTmp).br(CZero, "BRD_END"))
	a.emit(op(AAdd, RTAddr, RTDone).mem(MRead)) // MDR := M[addr+done]
	a.emit(pass(RMDR).emitBus())
	a.emit(op(ADec, RTmp, RZero).br(CZero, "BRD_ONE")) // one byte remained?
	a.emit(op(AInc, RTDone, RZero).to(RTDone))
	a.label("BRD_ONE")
	a.emit(op(AInc, RTDone, RZero).to(RTDone))
	a.emit(op(ADec, RCnt, RZero).to(RCnt).br(CAlways, "BRD_LOOP"))
	a.label("BRD_END")
	a.emit(op(ASub, RTCount, RTDone).br(CNotZero, rMain))
	a.emit(pass(RZero).to(RTFlags).done()) // block complete: retire tag

	// BLOCK WRITE DATA (A.4.4): accept a burst of words; data past the
	// count is an overrun error.
	a.routine(rWriteData)
	a.emit(latch(RTag))
	a.emit(latch(RCnt)) // number of incoming words
	// An active write request has flags == 3 exactly.
	a.emit(imm(3).to(RFirst))
	a.emit(op(ASub, RTFlags, RFirst).br(CNotZero, "EMITBAD"))
	a.emit(pass(RZero).emitBus()) // status: OK
	a.label("BWD_LOOP")
	a.emit(pass(RCnt).br(CZero, "BWD_END"))
	a.emit(op(ASub, RTCount, RTDone).to(RTmp).br(CZero, "EMITOVR"))
	a.emit(latch(RMDR))
	a.emit(op(ADec, RTmp, RZero).br(CZero, "BWD_ONE")) // final odd byte?
	a.emit(op(AAdd, RTAddr, RTDone).mem(MWrite))
	a.emit(op(AInc, RTDone, RZero).to(RTDone))
	a.emit(pass(RZero).br(CAlways, "BWD_STEP"))
	a.label("BWD_ONE")
	a.emit(op(AAdd, RTAddr, RTDone).mem(MWriteByte))
	a.label("BWD_STEP")
	a.emit(op(AInc, RTDone, RZero).to(RTDone))
	a.emit(op(ADec, RCnt, RZero).to(RCnt).br(CAlways, "BWD_LOOP"))
	a.label("BWD_END")
	a.emit(op(ASub, RTCount, RTDone).br(CNotZero, rMain))
	a.emit(pass(RZero).to(RTFlags).done())

	prog, entry, err := a.Assemble()
	if err != nil {
		return nil, nil, err
	}
	for cmd, name := range commandEntry {
		if _, ok := entry[name]; !ok {
			return nil, nil, fmt.Errorf("microcode: no routine for command %v", cmd)
		}
	}
	return prog, entry, nil
}
