package microcode

// Component is one row of the data-path chip inventory in the spirit of
// Table A.1. The thesis reports the data path fits one chip of roughly
// 6000 active components and the sequencer one of roughly 1000; the
// original table's line items are not preserved in the available text,
// so this inventory is reconstructed from the Figure A.2 data path this
// package implements, sized with era-typical gate complexities.
type Component struct {
	Unit   string
	Count  int
	Detail string
}

// DataPathComponents inventories the data-path chip (Table A.1
// reconstruction); the counts sum to roughly 6000 active components.
func DataPathComponents() []Component {
	return []Component{
		{"Register file", 1536, "12 x 16-bit registers, 8 transistors/bit"},
		{"Tag table RAM", 2048, "16 entries x 4 x 16 bits, 2 per bit (static cell share)"},
		{"ALU", 960, "16-bit adder/logic, ~60 per bit slice"},
		{"Source/destination multiplexers", 640, "two 16-way 16-bit muxes"},
		{"Memory address/data latches", 256, "MAR + MDR"},
		{"Bus interface latches", 256, "A/D in/out, TG, CM"},
		{"Zero detect and condition logic", 64, ""},
		{"Control decode", 240, "micro-instruction field decoders"},
	}
}

// SequencerComponents inventories the sequencer chip (~1000 active
// components per §5.5).
func SequencerComponents() []Component {
	return []Component{
		{"Micro-PC and incrementer", 160, "7-bit counter + adder"},
		{"Branch mux and condition select", 96, ""},
		{"Control store interface", 480, "40-bit pipeline register + drivers"},
		{"Dispatch logic", 120, "command compare chain"},
		{"Clock and handshake FSM", 150, "IS/IK edges, AR/ANC"},
	}
}

// TotalComponents sums an inventory.
func TotalComponents(cs []Component) int {
	n := 0
	for _, c := range cs {
		n += c.Count
	}
	return n
}
