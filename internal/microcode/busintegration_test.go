package microcode

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/rng"
)

// Compile-time check: the microcoded adapter satisfies the smart bus's
// backend interface.
var _ bus.Backend = (*Adapter)(nil)

// runScenario drives a fixed mixed workload (queue ops, simple
// reads/writes, an odd-length block round trip) over the given bus and
// returns the trace of completed grants plus the observed results.
func runScenario(b *bus.Bus, eng *des.Engine) (trace, results []string) {
	b.Trace = func(ev bus.TraceEvent) {
		trace = append(trace, fmt.Sprintf("%d %s %s", ev.At, ev.Master, ev.Cmd))
	}
	host := b.AttachUnit("host", 2)
	mp := b.AttachUnit("mp", 5)

	payload := bytes.Repeat([]byte{0xD7}, 25) // odd-length block
	record := func(f string, args ...any) { results = append(results, fmt.Sprintf(f, args...)) }

	mp.Enqueue(0x10, 0x100, func() {
		mp.Enqueue(0x10, 0x200, func() {
			mp.First(0x10, func(e uint16) {
				record("first=%#x", e)
				mp.Dequeue(0x10, 0x999, func(found bool) {
					record("dequeue-absent=%v", found)
				})
			})
		})
	})
	host.WriteBlock(0x3000, payload, func() {
		record("wrote-block")
		host.ReadBlock(0x3000, 25, func(data []byte) {
			record("read-block ok=%v", bytes.Equal(data, payload))
			host.Write(0x4000, 0xBEEF, func() {
				host.Read(0x4000, func(w uint16) { record("word=%#x", w) })
			})
		})
	})
	eng.Run(des.Second)
	return trace, results
}

// The full bus stack produces identical traces and results over the
// behavioral controller and over this package's microcode.
func TestBusOverMicrocodeEquivalent(t *testing.T) {
	eng1 := des.New(5)
	trace1, res1 := runScenario(bus.New(eng1), eng1)

	eng2 := des.New(5)
	trace2, res2 := runScenario(bus.NewWith(eng2, NewAdapter()), eng2)

	if len(res1) == 0 || len(trace1) == 0 {
		t.Fatal("scenario produced no activity")
	}
	if fmt.Sprint(res1) != fmt.Sprint(res2) {
		t.Fatalf("results differ:\nbehavioral: %v\nmicrocode:  %v", res1, res2)
	}
	if fmt.Sprint(trace1) != fmt.Sprint(trace2) {
		t.Fatalf("traces differ:\nbehavioral: %v\nmicrocode:  %v", trace1, trace2)
	}
}

// Random workloads over both full bus stacks leave identical observable
// behavior and identical memory images.
func TestBusOverMicrocodeRandomized(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		eng1 := des.New(seed)
		b1 := bus.New(eng1)
		u1 := b1.AttachUnit("u", 3)

		eng2 := des.New(seed)
		mb := NewAdapter()
		b2 := bus.NewWith(eng2, mb)
		u2 := b2.AttachUnit("u", 3)

		src := rng.New(seed * 977)
		var log1, log2 []string
		step := func(u *bus.Unit, eng *des.Engine, log *[]string, op int, a1, a2 uint16, data []byte) {
			switch op {
			case 0:
				u.Enqueue(0x20, a1, func() { *log = append(*log, "enq") })
			case 1:
				u.First(0x20, func(e uint16) { *log = append(*log, fmt.Sprintf("first=%#x", e)) })
			case 2:
				u.Dequeue(0x20, a1, func(f bool) { *log = append(*log, fmt.Sprintf("deq=%v", f)) })
			case 3:
				u.WriteBlock(a2, data, func() { *log = append(*log, "wb") })
			case 4:
				u.ReadBlock(a2, uint16(len(data)), func(d []byte) {
					*log = append(*log, fmt.Sprintf("rb=%x", d))
				})
			case 5:
				u.Write(a2, a1, func() { *log = append(*log, "w") })
			}
			eng.Run(eng.Now() + des.Millisecond)
		}
		for i := 0; i < 40; i++ {
			op := src.Intn(6)
			a1 := uint16(0x100 + 0x10*src.Intn(16))
			a2 := uint16(0x3000 + 0x40*src.Intn(16))
			n := 1 + src.Intn(12)
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(src.Uint64())
			}
			step(u1, eng1, &log1, op, a1, a2, data)
			step(u2, eng2, &log2, op, a1, a2, data)
		}
		if fmt.Sprint(log1) != fmt.Sprint(log2) {
			t.Fatalf("seed %d: behavior diverged:\n%v\n%v", seed, log1, log2)
		}
		img1 := b1.Ctrl.Mem.ReadBlock(0, 0x4000)
		img2 := mb.C.Mem.ReadBlock(0, 0x4000)
		if !bytes.Equal(img1, img2) {
			t.Fatalf("seed %d: memory images diverged", seed)
		}
	}
}
