package microcode

import "fmt"

// asm is a micro-assembler: it accumulates instructions and resolves
// labels to branch targets at Assemble time. Mnemonics compose the
// horizontal fields, so one instruction can combine an ALU transfer, a
// memory cycle addressed by the ALU result, a bus action, and a branch.
type asm struct {
	prog   []Micro
	labels map[string]int
	entry  map[string]int // routine entry points, by name
}

func newAsm() *asm {
	return &asm{labels: map[string]int{}, entry: map[string]int{}}
}

// label defines a branch target at the current location.
func (a *asm) label(name string) {
	if _, dup := a.labels[name]; dup {
		panic("microcode: duplicate label " + name)
	}
	a.labels[name] = len(a.prog)
}

// routine defines a mapping-PROM entry point (also usable as a label).
func (a *asm) routine(name string) {
	a.entry[name] = len(a.prog)
	a.label(name)
}

func (a *asm) emit(m Micro) {
	a.prog = append(a.prog, m)
}

// --- field builders ---------------------------------------------------------

// op starts an instruction computing op(srcA, srcB).
func op(o ALUOp, srcA, srcB Reg) Micro { return Micro{ALU: o, SrcA: srcA, SrcB: srcB} }

// opi starts an instruction computing op(srcA, imm).
func opi(o ALUOp, srcA Reg, imm uint8) Micro {
	if !o.usesB() {
		panic("microcode: immediate on an op without a B operand")
	}
	return Micro{ALU: o, SrcA: srcA, SrcB: RZero, Imm: imm}
}

// pass yields src unchanged.
func pass(src Reg) Micro { return op(APassA, src, RZero) }

// imm yields the constant.
func imm(v uint8) Micro { return opi(APassB, RZero, v) }

// to routes the ALU result to a register.
func (m Micro) to(dst Reg) Micro { m.Dest = dst; return m }

// mem attaches a memory cycle addressed by the ALU result.
func (m Micro) mem(o MemOp) Micro { m.Mem = o; return m }

// emitBus puts the ALU result on the A/D lines.
func (m Micro) emitBus() Micro { m.Bus = BEmit; return m }

// br attaches a conditional branch on the ALU zero flag.
func (m Micro) br(c Cond, label string) Micro { m.Cond = c; m.label = label; return m }

// done ends the routine: branch back to MAIN (address 0).
func (m Micro) done() Micro { m.Cond = CAlways; m.label = rMain; return m }

// latch pops the next bus operand into dst (the whole instruction).
func latch(dst Reg) Micro { return Micro{Bus: BLatch, Dest: dst} }

// Assemble resolves labels, validates field sharing, and returns the
// program with its entry points.
func (a *asm) Assemble() ([]Micro, map[string]int, error) {
	prog := append([]Micro(nil), a.prog...)
	for i := range prog {
		m := &prog[i]
		if m.label != "" {
			t, ok := a.labels[m.label]
			if !ok {
				return nil, nil, fmt.Errorf("microcode: undefined label %q at %d", m.label, i)
			}
			if t >= 1<<7 {
				return nil, nil, fmt.Errorf("microcode: branch target %d exceeds the 7-bit field", t)
			}
			if m.usesImmOperand() {
				return nil, nil, fmt.Errorf("microcode: instruction %d needs Imm as both operand and target", i)
			}
			m.Imm = uint8(t)
			m.label = ""
		} else if m.Cond != CNever {
			return nil, nil, fmt.Errorf("microcode: instruction %d branches without a target", i)
		}
	}
	return prog, a.entry, nil
}
