package main

import (
	"strings"
	"testing"
)

func snap(goVersion string, benches ...benchResult) snapshot {
	return snapshot{
		Schema: "ipcbench/1", GoVersion: goVersion, GOOS: "linux",
		GOARCH: "amd64", GOMAXPROCS: 1, Benchmarks: benches,
	}
}

func bench(name string, ns, allocs float64) benchResult {
	return benchResult{Pkg: "repro", Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCompareSnapshots(t *testing.T) {
	base := snap("go1.24.0",
		bench("BenchmarkA", 1000, 40),
		bench("BenchmarkB", 2000, 100),
	)

	t.Run("within tolerance", func(t *testing.T) {
		cur := snap("go1.24.0",
			bench("BenchmarkA", 1200, 40), // +20% < 25%
			bench("BenchmarkB", 1500, 90), // improved
		)
		if regs := compareSnapshots(base, cur, 0.25, false); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})

	t.Run("missing from baseline", func(t *testing.T) {
		// A benchmark the baseline has no entry for must fail the gate —
		// otherwise a new hot path ships unguarded until someone remembers
		// to refresh the snapshot.
		cur := snap("go1.24.0",
			bench("BenchmarkA", 1000, 40),
			bench("BenchmarkB", 2000, 100),
			bench("BenchmarkNew", 1, 1),
		)
		regs := compareSnapshots(base, cur, 0.25, false)
		if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkNew") || !strings.Contains(regs[0], "missing from baseline") {
			t.Fatalf("want one missing-from-baseline regression, got %v", regs)
		}
	})

	t.Run("ns regression", func(t *testing.T) {
		cur := snap("go1.24.0",
			bench("BenchmarkA", 1300, 40), // +30% > 25%
			bench("BenchmarkB", 2000, 100),
		)
		regs := compareSnapshots(base, cur, 0.25, false)
		if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkA") || !strings.Contains(regs[0], "ns/op") {
			t.Fatalf("want one BenchmarkA ns/op regression, got %v", regs)
		}
	})

	t.Run("allocs regression", func(t *testing.T) {
		cur := snap("go1.24.0",
			bench("BenchmarkA", 1000, 60), // +50% allocs
			bench("BenchmarkB", 2000, 100),
		)
		regs := compareSnapshots(base, cur, 0.25, false)
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
			t.Fatalf("want one allocs/op regression, got %v", regs)
		}
	})

	t.Run("skipNs suppresses ns only", func(t *testing.T) {
		cur := snap("go1.25.0",
			bench("BenchmarkA", 9000, 60), // ns ignored, allocs still judged
			bench("BenchmarkB", 9000, 100),
		)
		regs := compareSnapshots(base, cur, 0.25, true)
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
			t.Fatalf("want only the allocs/op regression under skipNs, got %v", regs)
		}
	})

	t.Run("missing benchmark", func(t *testing.T) {
		cur := snap("go1.24.0", bench("BenchmarkA", 1000, 40))
		regs := compareSnapshots(base, cur, 0.25, false)
		if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
			t.Fatalf("want one missing-benchmark regression, got %v", regs)
		}
	})
}

func TestEnvComparable(t *testing.T) {
	a := snap("go1.24.0")
	if !envComparable(a, snap("go1.24.0")) {
		t.Error("identical environments judged incomparable")
	}
	b := snap("go1.25.0")
	if envComparable(a, b) {
		t.Error("different go versions judged comparable")
	}
	c := snap("go1.24.0")
	c.GOMAXPROCS = 8
	if envComparable(a, c) {
		t.Error("different GOMAXPROCS judged comparable")
	}
}
