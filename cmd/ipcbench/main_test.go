package main

import (
	"strings"
	"testing"
)

func snap(goVersion string, benches ...benchResult) snapshot {
	return snapshot{
		Schema: "ipcbench/1", GoVersion: goVersion, GOOS: "linux",
		GOARCH: "amd64", GOMAXPROCS: 1, CalibrationNsPerOp: 1.0,
		Benchmarks: benches,
	}
}

func bench(name string, ns, allocs float64) benchResult {
	return benchResult{Pkg: "repro", Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCompareSnapshots(t *testing.T) {
	base := snap("go1.24.0",
		bench("BenchmarkA", 1000, 40),
		bench("BenchmarkB", 2000, 100),
	)

	t.Run("within tolerance", func(t *testing.T) {
		cur := snap("go1.24.0",
			bench("BenchmarkA", 1200, 40), // +20% < 25%
			bench("BenchmarkB", 1500, 90), // improved
		)
		if regs := compareSnapshots(base, cur, 0.25, false); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})

	t.Run("missing from baseline", func(t *testing.T) {
		// A benchmark the baseline has no entry for must fail the gate —
		// otherwise a new hot path ships unguarded until someone remembers
		// to refresh the snapshot.
		cur := snap("go1.24.0",
			bench("BenchmarkA", 1000, 40),
			bench("BenchmarkB", 2000, 100),
			bench("BenchmarkNew", 1, 1),
		)
		regs := compareSnapshots(base, cur, 0.25, false)
		if len(regs) != 1 || !strings.Contains(regs[0].msg, "BenchmarkNew") || !strings.Contains(regs[0].msg, "missing from baseline") {
			t.Fatalf("want one missing-from-baseline regression, got %v", regs)
		}
		if regs[0].nsOnly {
			t.Error("a missing benchmark must not be retryable as wall-clock noise")
		}
	})

	t.Run("ns regression", func(t *testing.T) {
		cur := snap("go1.24.0",
			bench("BenchmarkA", 1300, 40), // +30% > 25%
			bench("BenchmarkB", 2000, 100),
		)
		regs := compareSnapshots(base, cur, 0.25, false)
		if len(regs) != 1 || !strings.Contains(regs[0].msg, "BenchmarkA") || !strings.Contains(regs[0].msg, "ns/op") {
			t.Fatalf("want one BenchmarkA ns/op regression, got %v", regs)
		}
		if !regs[0].nsOnly {
			t.Error("pure wall-clock regression must be marked retryable")
		}
	})

	t.Run("allocs regression", func(t *testing.T) {
		cur := snap("go1.24.0",
			bench("BenchmarkA", 1000, 60), // +50% allocs
			bench("BenchmarkB", 2000, 100),
		)
		regs := compareSnapshots(base, cur, 0.25, false)
		if len(regs) != 1 || !strings.Contains(regs[0].msg, "allocs/op") {
			t.Fatalf("want one allocs/op regression, got %v", regs)
		}
		if regs[0].nsOnly {
			t.Error("allocation regressions are deterministic, never retryable")
		}
	})

	t.Run("skipNs suppresses ns only", func(t *testing.T) {
		cur := snap("go1.25.0",
			bench("BenchmarkA", 9000, 60), // ns ignored, allocs still judged
			bench("BenchmarkB", 9000, 100),
		)
		regs := compareSnapshots(base, cur, 0.25, true)
		if len(regs) != 1 || !strings.Contains(regs[0].msg, "allocs/op") {
			t.Fatalf("want only the allocs/op regression under skipNs, got %v", regs)
		}
	})

	t.Run("missing benchmark", func(t *testing.T) {
		cur := snap("go1.24.0", bench("BenchmarkA", 1000, 40))
		regs := compareSnapshots(base, cur, 0.25, false)
		if len(regs) != 1 || !strings.Contains(regs[0].msg, "missing") {
			t.Fatalf("want one missing-benchmark regression, got %v", regs)
		}
	})
}

func TestAllNsOnly(t *testing.T) {
	if !allNsOnly(nil) {
		t.Error("empty set should be vacuously ns-only")
	}
	if !allNsOnly([]regression{{nsOnly: true}, {nsOnly: true}}) {
		t.Error("all-ns set misjudged")
	}
	if allNsOnly([]regression{{nsOnly: true}, {nsOnly: false}}) {
		t.Error("mixed set must not qualify for retry")
	}
}

func TestMergeMinNs(t *testing.T) {
	dst := []benchResult{
		bench("BenchmarkA", 1300, 40),
		bench("BenchmarkB", 2000, 100),
	}
	mergeMinNs(dst, []benchResult{
		bench("BenchmarkA", 900, 44), // faster: wall-clock taken, allocs kept
		bench("BenchmarkB", 2500, 90),
		bench("BenchmarkC", 1, 1), // unknown to dst: ignored
	})
	if dst[0].NsPerOp != 900 || dst[0].AllocsPerOp != 40 {
		t.Errorf("BenchmarkA: want ns=900 allocs=40, got ns=%v allocs=%v", dst[0].NsPerOp, dst[0].AllocsPerOp)
	}
	if dst[1].NsPerOp != 2000 {
		t.Errorf("BenchmarkB: slower re-measurement must not replace ns, got %v", dst[1].NsPerOp)
	}
}

func TestEnvComparable(t *testing.T) {
	a := snap("go1.24.0")
	if !envComparable(a, snap("go1.24.0")) {
		t.Error("identical environments judged incomparable")
	}
	b := snap("go1.25.0")
	if envComparable(a, b) {
		t.Error("different go versions judged comparable")
	}
	c := snap("go1.24.0")
	c.GOMAXPROCS = 8
	if envComparable(a, c) {
		t.Error("different GOMAXPROCS judged comparable")
	}

	// The static fingerprint cannot tell two same-spec hosts apart; the
	// measured calibration speed must also agree before ns/op is trusted.
	d := snap("go1.24.0")
	d.CalibrationNsPerOp = 1.20
	if !envComparable(a, d) {
		t.Error("calibrations within 25% judged incomparable")
	}
	d.CalibrationNsPerOp = 2.0
	if envComparable(a, d) {
		t.Error("2x calibration divergence judged comparable")
	}
	d.CalibrationNsPerOp = 0 // baseline predates the calibration field
	if envComparable(a, d) {
		t.Error("missing calibration must disable ns comparison")
	}
}
