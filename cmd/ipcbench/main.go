// Command ipcbench runs the repository's Go benchmarks with allocation
// reporting and records the results as a machine-readable JSON
// trajectory. Committed snapshots (BENCH_gtpn.json) let a change to the
// solver hot path be judged against the recorded baseline with nothing
// but `go run ./cmd/ipcbench` and a diff — ns/op, B/op, allocs/op, and
// any custom metrics (states, trips/s, ...) per benchmark, plus enough
// environment (go version, GOOS/GOARCH, GOMAXPROCS) to know when two
// snapshots are comparable. No timestamps are recorded, so re-running
// on identical code and hardware yields a stable file.
//
// With -compare BASELINE.json the freshly measured results are judged
// against the committed baseline instead of written out: any benchmark
// whose ns/op or allocs/op grew by more than -tolerance (relative),
// that disappeared, or that the baseline has no entry for (refresh the
// snapshot to admit new benchmarks), is reported and the exit status is
// non-zero — a CI gate against hot-path regressions. ns/op is only compared when the
// baseline's environment (go version, GOOS/GOARCH, GOMAXPROCS) matches
// the current one AND the two machines run a fixed calibration kernel
// at similar speed — two hosts can fingerprint identically yet differ
// 2× in clock, which would otherwise report phantom wall-clock
// regressions; allocs/op is environment-independent and is always
// compared. Wall-clock-only regressions are re-measured up to twice
// (keeping the fastest observation) before they fail the gate, so a
// burst of scheduler interference on a shared host cannot fail CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchResult is one benchmark line of `go test -bench` output.
type benchResult struct {
	Pkg   string `json:"pkg"`
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	Iters int64  `json:"iters"`
	// NsPerOp, BPerOp and AllocsPerOp are the standard testing metrics;
	// Metrics carries any b.ReportMetric extras keyed by unit.
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// snapshot is the file schema.
type snapshot struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Bench      string `json:"bench"`
	Benchtime  string `json:"benchtime"`
	Count      int    `json:"count"`
	// CalibrationNsPerOp is the machine's speed on a fixed
	// single-threaded arithmetic kernel, measured alongside the
	// benchmarks. Machines whose calibrations diverge produce
	// incomparable wall-clock numbers even when every fingerprint field
	// above agrees.
	CalibrationNsPerOp float64       `json:"calibration_ns_per_op"`
	Packages           []string      `json:"packages"`
	Benchmarks         []benchResult `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_gtpn.json", "output file (\"-\" for stdout)")
		bench     = flag.String("bench", "GTPN|Flat|Reference|Sweep|Serve|Decode", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "200ms", "per-benchmark time passed to -benchtime")
		count     = flag.Int("count", 3, "repetitions passed to -count (ns/op keeps the fastest run; other metrics are averaged)")
		compare   = flag.String("compare", "", "baseline snapshot to compare against instead of writing -out; regressions exit non-zero")
		tolerance = flag.Float64("tolerance", 0.25, "with -compare, allowed relative growth in ns/op and allocs/op")
	)
	flag.Parse()
	pkgs := []string{".", "./internal/gtpn", "./internal/service"}

	results, err := measure(pkgs, *bench, *benchtime, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipcbench: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "ipcbench: no benchmarks matched %q\n", *bench)
		os.Exit(1)
	}

	snap := snapshot{
		Schema:             "ipcbench/1",
		GoVersion:          runtime.Version(),
		GOOS:               runtime.GOOS,
		GOARCH:             runtime.GOARCH,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Bench:              *bench,
		Benchtime:          *benchtime,
		Count:              *count,
		CalibrationNsPerOp: calibrate(),
		Packages:           pkgs,
		Benchmarks:         results,
	}

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcbench: %v\n", err)
			os.Exit(1)
		}
		var base snapshot
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "ipcbench: %s: %v\n", *compare, err)
			os.Exit(1)
		}
		skipNs := !envComparable(base, snap)
		if skipNs {
			fmt.Printf("ipcbench: baseline environment differs (%s %s/%s procs=%d calib=%.2fns vs %s %s/%s procs=%d calib=%.2fns); comparing allocs/op only\n",
				base.GoVersion, base.GOOS, base.GOARCH, base.GOMAXPROCS, base.CalibrationNsPerOp,
				snap.GoVersion, snap.GOOS, snap.GOARCH, snap.GOMAXPROCS, snap.CalibrationNsPerOp)
		}
		regressions := compareSnapshots(base, snap, *tolerance, skipNs)
		// Wall-clock regressions on a busy host are often interference,
		// not code: re-measure and keep the fastest observation before
		// believing them. A real slowdown cannot produce a fast run, so
		// it survives every retry; allocation regressions are
		// deterministic and are never retried.
		for retry := 1; retry <= 2 && len(regressions) > 0 && allNsOnly(regressions); retry++ {
			fmt.Printf("ipcbench: %d wall-clock regression(s); re-measuring to rule out interference (retry %d)\n",
				len(regressions), retry)
			again, err := measure(pkgs, *bench, *benchtime, *count)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipcbench: %v\n", err)
				os.Exit(1)
			}
			mergeMinNs(snap.Benchmarks, again)
			regressions = compareSnapshots(base, snap, *tolerance, skipNs)
		}
		for _, r := range regressions {
			fmt.Printf("ipcbench: REGRESSION %s\n", r.msg)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Printf("ipcbench: %d benchmarks within %.0f%% of %s\n",
			len(results), *tolerance*100, *compare)
		return
	}

	enc, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipcbench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ipcbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ipcbench: wrote %d benchmarks to %s\n", len(results), *out)
}

// measure runs the benchmark suite once and parses the results.
func measure(pkgs []string, bench, benchtime string, count int) ([]benchResult, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count)}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, raw)
	}
	return parseBenchOutput(raw)
}

// mergeMinNs folds a re-measurement into prior results, keeping the
// fastest ns/op seen for each benchmark. Only wall-clock is merged:
// allocation counts and custom metrics stay from the first run.
func mergeMinNs(dst []benchResult, again []benchResult) {
	byKey := map[string]float64{}
	for _, r := range again {
		byKey[r.Pkg+"\x00"+r.Name] = r.NsPerOp
	}
	for i := range dst {
		if v, ok := byKey[dst[i].Pkg+"\x00"+dst[i].Name]; ok && v > 0 && v < dst[i].NsPerOp {
			dst[i].NsPerOp = v
		}
	}
}

// parseBenchOutput extracts benchmark lines from `go test -bench`
// output. `pkg:` header lines attribute subsequent benchmarks. Across
// -count repeats, ns/op keeps the fastest run — scheduler interference
// is one-sided, it only ever slows a run down — while allocation counts
// and custom metrics (deterministic) are averaged. Results come back
// sorted by (pkg, name) so the file is diff-stable.
func parseBenchOutput(raw []byte) ([]benchResult, error) {
	type acc struct {
		benchResult
		runs int64
	}
	byKey := map[string]*acc{}
	pkg := ""
	for _, line := range bytes.Split(raw, []byte("\n")) {
		s := strings.TrimSpace(string(line))
		if rest, ok := strings.CutPrefix(s, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(s, "Benchmark") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) < 2 {
			continue
		}
		name, procs := splitProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark...: output" noise
		}
		a := byKey[pkg+"\x00"+name]
		if a == nil {
			a = &acc{benchResult: benchResult{Pkg: pkg, Name: name, Procs: procs}}
			byKey[pkg+"\x00"+name] = a
		}
		a.runs++
		a.Iters += iters
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], s)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				if a.NsPerOp == 0 || v < a.NsPerOp {
					a.NsPerOp = v
				}
			case "B/op":
				a.BPerOp += v
			case "allocs/op":
				a.AllocsPerOp += v
			default:
				if a.Metrics == nil {
					a.Metrics = map[string]float64{}
				}
				a.Metrics[unit] += v
			}
		}
	}
	results := make([]benchResult, 0, len(byKey))
	for _, a := range byKey {
		r := a.benchResult
		n := float64(a.runs)
		r.BPerOp /= n
		r.AllocsPerOp /= n
		for k := range r.Metrics {
			r.Metrics[k] /= n
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Pkg != results[j].Pkg {
			return results[i].Pkg < results[j].Pkg
		}
		return results[i].Name < results[j].Name
	})
	return results, nil
}

// envComparable reports whether wall-clock numbers from the two
// snapshots were measured under the same conditions. Allocation counts
// survive environment changes; nanoseconds do not — and the static
// fingerprint alone cannot tell two same-spec hosts apart, so the
// measured calibration speeds must also agree (within 25%) before
// ns/op is trusted. A baseline recorded before calibration existed
// (field zero) is never ns-comparable.
func envComparable(a, b snapshot) bool {
	if a.GoVersion != b.GoVersion || a.GOOS != b.GOOS ||
		a.GOARCH != b.GOARCH || a.GOMAXPROCS != b.GOMAXPROCS {
		return false
	}
	if a.CalibrationNsPerOp <= 0 || b.CalibrationNsPerOp <= 0 {
		return false
	}
	r := a.CalibrationNsPerOp / b.CalibrationNsPerOp
	return r >= 1/1.25 && r <= 1.25
}

// calibrationSink defeats dead-code elimination of the kernel.
var calibrationSink float64

// calibrate times a fixed single-threaded float kernel — the shape of
// the solver's stationary iteration inner loop — taking the best of a
// few repetitions to shed scheduler noise. It is a property of the
// machine, not the code under benchmark.
func calibrate() float64 {
	const iters = 1 << 23
	buf := make([]float64, 1024)
	for i := range buf {
		buf[i] = float64(i%97)*1.000001 + 0.5
	}
	best := 0.0
	for rep := 0; rep < 5; rep++ {
		start := nanotime()
		acc := 1.0
		for i := 0; i < iters; i++ {
			acc = acc*0.9999999 + buf[i&1023]*1e-7
		}
		calibrationSink = acc
		el := float64(nanotime()-start) / iters
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}

func nanotime() int64 { return time.Now().UnixNano() }

// regression is one comparison failure; nsOnly marks pure wall-clock
// regressions, which are eligible for re-measurement retries.
type regression struct {
	msg    string
	nsOnly bool
}

func allNsOnly(regs []regression) bool {
	for _, r := range regs {
		if !r.nsOnly {
			return false
		}
	}
	return true
}

// compareSnapshots judges cur against base: every baseline benchmark
// must still exist, its ns/op (unless skipNs) and allocs/op must not
// have grown by more than tol relative, and every current benchmark
// must be present in the baseline — a brand-new benchmark fails the
// comparison until the snapshot is refreshed, so the gate can never
// silently skip an entry it has no baseline for. Improvements never
// fail.
func compareSnapshots(base, cur snapshot, tol float64, skipNs bool) []regression {
	byKey := map[string]benchResult{}
	for _, r := range cur.Benchmarks {
		byKey[r.Pkg+"\x00"+r.Name] = r
	}
	inBase := map[string]bool{}
	for _, b := range base.Benchmarks {
		inBase[b.Pkg+"\x00"+b.Name] = true
	}
	var regressions []regression
	for _, c := range cur.Benchmarks {
		if !inBase[c.Pkg+"\x00"+c.Name] {
			regressions = append(regressions, regression{msg: fmt.Sprintf(
				"%s %s: benchmark missing from baseline (refresh the snapshot)", c.Pkg, c.Name)})
		}
	}
	for _, b := range base.Benchmarks {
		c, ok := byKey[b.Pkg+"\x00"+b.Name]
		if !ok {
			regressions = append(regressions, regression{msg: fmt.Sprintf(
				"%s %s: benchmark missing from current run", b.Pkg, b.Name)})
			continue
		}
		if !skipNs && b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol) {
			regressions = append(regressions, regression{nsOnly: true, msg: fmt.Sprintf(
				"%s %s: ns/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				b.Pkg, b.Name, b.NsPerOp, c.NsPerOp,
				(c.NsPerOp/b.NsPerOp-1)*100, tol*100)})
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp > b.AllocsPerOp*(1+tol) {
			regressions = append(regressions, regression{msg: fmt.Sprintf(
				"%s %s: allocs/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				b.Pkg, b.Name, b.AllocsPerOp, c.AllocsPerOp,
				(c.AllocsPerOp/b.AllocsPerOp-1)*100, tol*100)})
		}
	}
	return regressions
}

// splitProcs splits the "-N" GOMAXPROCS suffix off a benchmark name.
func splitProcs(s string) (string, int) {
	if i := strings.LastIndexByte(s, '-'); i > 0 {
		if n, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i], n
		}
	}
	return s, 1
}
