// Command ipcload is a load generator for ipcd — the repository's own
// conversation-workload client. Each of -c workers draws workload
// points from a deterministic SplitMix64 stream derived from -seed and
// issues one request at a time (a closed loop: offered load tracks
// service capacity, as in the thesis's conversation workload), until
// -duration elapses.
//
// -rate switches to an open loop: arrivals follow a deterministic
// schedule — Poisson (exponential gaps) or fixed-interval, -rate
// requests/second aggregate across all workers — that marches on
// regardless of how fast responses return, the way a population of
// independent users actually behaves. Latency is then reported two
// ways: raw (send to completion) and coordinated-omission-corrected
// (INTENDED arrival to completion, Gil Tene's HdrHistogram
// discipline). When the server stalls, queued intended arrivals charge
// the stall to every request it delayed; the raw number would hide it.
// Corrected >= raw pointwise, since a request can never be sent before
// its intended time.
//
// Determinism: the request point set is a fixed function of the seed,
// and ipcd's responses are deterministic JSON, so the reported response
// digest — a hash over every distinct (request, response-body) pair —
// is byte-stable: two runs with the same seed against the same server
// print the same digest. Any request that yields two different bodies
// within a run is counted as a mismatch and fails the client.
//
// Failures are broken down by cause in the summary — one labeled bucket
// per non-2xx status code (429 backpressure, 503 drain/unavailable,
// 508 forwarding loop, ...) plus a "transport" bucket for
// connection-level errors — and any failed request makes the exit
// status non-zero.
//
// -targets drives a cluster without an external load balancer: a
// comma-separated node list each worker walks round-robin (workers
// start at staggered offsets, so the spread stays even at any -c).
// Because a cluster's responses are byte-identical whichever node
// answers, the response digest — and the mismatch counter — double as
// an end-to-end check of the cluster's determinism contract.
//
// Usage:
//
//	ipcload -addr http://localhost:8080 -c 32 -duration 5s
//	ipcload -targets http://n1:8080,http://n2:8080,http://n3:8080 -c 32 -duration 5s
//	ipcload -endpoint simulate -c 8 -duration 10s -seed 7
//	ipcload -nonlocal ...   include non-local workload points (slow solves)
//	ipcload -rate 500 -arrivals poisson -c 16 -duration 10s   open loop
//	ipcload -json ...       one deterministic JSON summary document on stdout
//	                        (includes a per-second throughput/error timeline)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "ipcd base URL")
		targets  = flag.String("targets", "", "comma-separated ipcd base URLs walked round-robin (overrides -addr); lets a cluster run without an external LB")
		c        = flag.Int("c", 8, "concurrent closed-loop workers")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		seed     = flag.Uint64("seed", 1, "workload stream seed")
		endpoint = flag.String("endpoint", "solve", "endpoint to drive: solve or simulate")
		nonlocal = flag.Bool("nonlocal", false, "include non-local workload points (much slower solves)")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate in requests/second aggregate across workers (0 = closed loop)")
		arrivals = flag.String("arrivals", "poisson", "open-loop arrival process: poisson or fixed")
		jsonOut  = flag.Bool("json", false, "print the end-of-run summary as one deterministic JSON document instead of text")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ipcload: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *c < 1 || *endpoint != "solve" && *endpoint != "simulate" {
		fmt.Fprintln(os.Stderr, "ipcload: -c must be >= 1 and -endpoint must be solve or simulate")
		flag.Usage()
		os.Exit(2)
	}
	if *rate < 0 || *arrivals != "poisson" && *arrivals != "fixed" {
		fmt.Fprintln(os.Stderr, "ipcload: -rate must be >= 0 and -arrivals must be poisson or fixed")
		flag.Usage()
		os.Exit(2)
	}

	bases := []string{*addr}
	if *targets != "" {
		bases = bases[:0]
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				bases = append(bases, t)
			}
		}
		if len(bases) == 0 {
			fmt.Fprintln(os.Stderr, "ipcload: -targets must name at least one URL")
			os.Exit(2)
		}
	}
	points := workloadPoints(*endpoint, *nonlocal)
	urls := make([]string, len(bases))
	for i, b := range bases {
		urls[i] = strings.TrimRight(b, "/") + "/v1/" + *endpoint
	}
	// Keep-alive pool sized to the worker count per host and compression
	// off: a load generator must never stall on connection churn or spend
	// client CPU gunzipping — either would masquerade as server latency.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *c * len(urls),
		MaxIdleConnsPerHost: *c,
		DisableCompression:  true,
	}}

	// Per-worker deterministic streams derived from the base seed.
	src := rng.New(*seed)
	workerSeeds := make([]uint64, *c)
	for i := range workerSeeds {
		workerSeeds[i] = src.Uint64()
	}

	var (
		mu         sync.Mutex
		latencies  []time.Duration
		corrected  []time.Duration // open loop only: intended arrival -> completion
		errs       int
		mismatches int
		byStatus   = map[int]int{}       // non-2xx responses per status code (0 = transport error)
		bodies     = map[string]uint64{} // request body -> response body hash
		perSecond  = map[int]*[2]int{}   // completion second -> [requests, errors]
	)
	openLoop := *rate > 0
	// Each worker carries 1/c of the aggregate rate; superposing c
	// independent Poisson streams of rate r/c is again Poisson of rate r.
	var gapMean float64
	if openLoop {
		gapMean = float64(*c) / *rate * float64(time.Second)
	}
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int, stream *rng.Source) {
			defer wg.Done()
			var local, localCorr []time.Duration
			localStatus := map[int]int{}
			localSecs := map[int]*[2]int{}
			type seen struct {
				req  string
				hash uint64
			}
			var observed []seen
			buf := bytes.NewBuffer(make([]byte, 0, 64<<10))
			// Each worker walks the target list round-robin from its own
			// staggered offset, so the spread stays even at any -c.
			// Open loop: the intended-arrival clock marches on a
			// deterministic schedule regardless of response times; a worker
			// sleeps until each intended instant, never sends early, and
			// charges latency from the INTENDED time so server stalls are
			// billed to every request they delayed (coordinated-omission
			// correction).
			next := start
			for i := 0; ; i++ {
				if openLoop {
					if *arrivals == "poisson" {
						next = next.Add(time.Duration(stream.Exp(gapMean)))
					} else {
						next = next.Add(time.Duration(gapMean))
					}
					if next.After(deadline) {
						break
					}
					time.Sleep(time.Until(next))
				} else if !time.Now().Before(deadline) {
					break
				}
				req := points[stream.Intn(len(points))]
				t0 := time.Now()
				body, status, ok := post(client, urls[(w+i)%len(urls)], req, buf)
				done := time.Now()
				local = append(local, done.Sub(t0))
				if openLoop {
					localCorr = append(localCorr, done.Sub(next))
				}
				sec := int(done.Sub(start) / time.Second)
				b := localSecs[sec]
				if b == nil {
					b = &[2]int{}
					localSecs[sec] = b
				}
				b[0]++
				if !ok {
					b[1]++
					localStatus[status]++
					continue
				}
				observed = append(observed, seen{req, hashBytes(body)})
			}
			mu.Lock()
			latencies = append(latencies, local...)
			corrected = append(corrected, localCorr...)
			for s, n := range localStatus {
				byStatus[s] += n
				errs += n
			}
			for sec, b := range localSecs {
				g := perSecond[sec]
				if g == nil {
					g = &[2]int{}
					perSecond[sec] = g
				}
				g[0] += b[0]
				g[1] += b[1]
			}
			for _, o := range observed {
				if prev, ok := bodies[o.req]; ok {
					if prev != o.hash {
						mismatches++
					}
				} else {
					bodies[o.req] = o.hash
				}
			}
			mu.Unlock()
		}(w, rng.New(workerSeeds[w]))
	}
	wg.Wait()
	wall := time.Since(start)

	n := len(latencies)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	sort.Slice(corrected, func(i, j int) bool { return corrected[i] < corrected[j] })
	q := func(p float64) time.Duration { return quantile(latencies, p) }
	qc := func(p float64) time.Duration { return quantile(corrected, p) }

	if *jsonOut {
		// One deterministically encoded document (sorted keys, shortest
		// round-trip floats) a harness can parse without scraping the text
		// layout. Percentiles cover both latency views; corrected ones are
		// present only in open-loop runs, where they are defined.
		doc := map[string]any{
			"arrivals":        *arrivals,
			"digest":          fmt.Sprintf("%016x", digest(bodies)),
			"distinct_points": len(bodies),
			"duration_s":      wall.Seconds(),
			"endpoint":        *endpoint,
			"errors":          errs,
			"mismatches":      mismatches,
			"open_loop":       openLoop,
			"requests":        n,
			"rps":             float64(n-errs) / wall.Seconds(),
			"seed":            *seed,
			"target_rate_rps": *rate,
		}
		if n > 0 {
			doc["p50_raw_us"] = q(0.50).Microseconds()
			doc["p90_raw_us"] = q(0.90).Microseconds()
			doc["p99_raw_us"] = q(0.99).Microseconds()
			doc["max_raw_us"] = latencies[n-1].Microseconds()
		}
		if openLoop && len(corrected) > 0 {
			doc["p50_corrected_us"] = qc(0.50).Microseconds()
			doc["p90_corrected_us"] = qc(0.90).Microseconds()
			doc["p99_corrected_us"] = qc(0.99).Microseconds()
			doc["max_corrected_us"] = corrected[len(corrected)-1].Microseconds()
		}
		// Per-status failure breakdown under the same labels as the text
		// summary ("transport", "429 (backpressure)", ...).
		failed := map[string]any{}
		for s, c := range byStatus {
			failed[statusLabel(s)] = c
		}
		doc["failed"] = failed
		// The run's per-second shape: one contiguous entry per elapsed
		// second (completion time), so a harness can see a node kill or a
		// shed episode as a dip instead of averaging it away. t_s is the
		// offset from run start; requests counts completions including the
		// failed ones that errors counts.
		doc["timeline"] = timeline(perSecond)
		os.Stdout.Write(service.MarshalDeterministic(doc))
		if errs > 0 || mismatches > 0 {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("ipcload: %d requests in %.2fs (%.1f req/s), %d errors\n",
		n, wall.Seconds(), float64(n-errs)/wall.Seconds(), errs)
	if len(byStatus) > 0 {
		// Failed requests broken down by cause: connection-level errors
		// ("transport") separately from each of the daemon's own refusal
		// codes, the known ones labeled.
		codes := make([]int, 0, len(byStatus))
		for s := range byStatus {
			codes = append(codes, s)
		}
		sort.Ints(codes)
		parts := make([]string, 0, len(codes))
		for _, s := range codes {
			parts = append(parts, fmt.Sprintf("%s x %d", statusLabel(s), byStatus[s]))
		}
		fmt.Printf("  failed: %s\n", strings.Join(parts, ", "))
	}
	if n > 0 {
		fmt.Printf("  latency p50 %v  p90 %v  p99 %v  max %v\n",
			q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
			q(0.99).Round(time.Microsecond), latencies[n-1].Round(time.Microsecond))
		// The client-side view of the route's latency, on the same fixed
		// buckets and deterministic encoding as the daemon's /metrics, so
		// the two can be cross-checked bucket by bucket.
		h := service.NewHistogram()
		for _, d := range latencies {
			h.Observe(float64(d.Microseconds()))
		}
		fmt.Printf("  histogram %s", service.MarshalDeterministic(
			map[string]any{"latency_us": map[string]any{*endpoint: h.Snapshot()}}))
		if openLoop {
			// Both views of the same run, deterministically encoded so a
			// harness can parse the line: raw (send -> completion) hides
			// queueing behind a stalled server; corrected (intended ->
			// completion) charges it. Corrected >= raw pointwise, because a
			// request never goes out before its intended time.
			fmt.Printf("  open-loop %s", service.MarshalDeterministic(map[string]any{
				"arrivals":         *arrivals,
				"target_rate_rps":  *rate,
				"requests":         n,
				"errors":           errs,
				"p50_raw_us":       q(0.50).Microseconds(),
				"p90_raw_us":       q(0.90).Microseconds(),
				"p99_raw_us":       q(0.99).Microseconds(),
				"max_raw_us":       latencies[n-1].Microseconds(),
				"p50_corrected_us": qc(0.50).Microseconds(),
				"p90_corrected_us": qc(0.90).Microseconds(),
				"p99_corrected_us": qc(0.99).Microseconds(),
				"max_corrected_us": corrected[len(corrected)-1].Microseconds(),
			}))
		}
	}
	fmt.Printf("  response digest %016x (%d distinct points, %d mismatches)\n",
		digest(bodies), len(bodies), mismatches)
	if errs > 0 || mismatches > 0 {
		os.Exit(1)
	}
}

// workloadPoints is the deterministic request-point set: every
// combination of architecture I-IV, 1-2 conversations, and the thesis's
// server-compute sweep values. A finite set means a long enough run
// covers every point, so the digest compares across runs.
func workloadPoints(endpoint string, nonlocal bool) []string {
	var points []string
	locality := []string{"false"}
	if nonlocal {
		locality = append(locality, "true")
	}
	for _, nl := range locality {
		for arch := 1; arch <= 4; arch++ {
			for n := 1; n <= 2; n++ {
				for _, x := range []int{0, 570, 1140, 2850} {
					switch endpoint {
					case "solve":
						points = append(points, fmt.Sprintf(
							`{"arch":%d,"conversations":%d,"server_compute_us":%d,"non_local":%s}`,
							arch, n, x, nl))
					case "simulate":
						points = append(points, fmt.Sprintf(
							`{"arch":%d,"conversations":%d,"server_compute_us":%d,"non_local":%s,"seconds":2,"seed":42}`,
							arch, n, x, nl))
					}
				}
			}
		}
	}
	return points
}

// post issues one request, reading the body into the caller's reusable
// buffer (the returned bytes are valid until the next post on the same
// buffer — each worker owns one, so no per-request allocation). ok
// means a 2xx response with a readable body; otherwise status reports
// the response code (0 for a transport or body-read error) so the
// caller can break failures down by cause.
func post(client *http.Client, url, body string, buf *bytes.Buffer) ([]byte, int, bool) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, 0, false
	}
	defer resp.Body.Close()
	buf.Reset()
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, 0, false
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, resp.StatusCode, false
	}
	return buf.Bytes(), resp.StatusCode, true
}

// timeline renders the per-second counters as a contiguous array from
// second 0 through the last second that saw a completion — empty
// seconds appear as zero entries, so dips are visible.
func timeline(perSecond map[int]*[2]int) []any {
	last := -1
	for sec := range perSecond {
		if sec > last {
			last = sec
		}
	}
	out := make([]any, 0, last+1)
	for sec := 0; sec <= last; sec++ {
		reqs, errs := 0, 0
		if b := perSecond[sec]; b != nil {
			reqs, errs = b[0], b[1]
		}
		out = append(out, map[string]any{"t_s": sec, "requests": reqs, "errors": errs})
	}
	return out
}

// statusLabel names a failure bucket: 0 is a connection-level error,
// the well-known refusal codes carry their meaning, anything else is
// just the code.
func statusLabel(s int) string {
	switch s {
	case 0:
		return "transport"
	case 429:
		return "429 (backpressure)"
	case 503:
		return "503 (unavailable)"
	case 508:
		return "508 (forward loop)"
	default:
		return fmt.Sprintf("%d", s)
	}
}

// quantile indexes a sorted latency slice at fraction p (nearest-rank,
// clamped); zero for an empty slice.
func quantile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// digest folds every distinct (request, response-hash) pair, in sorted
// request order, into one order-independent run digest.
func digest(bodies map[string]uint64) uint64 {
	keys := make([]string, 0, len(bodies))
	for k := range bodies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%016x;", k, bodies[k])
	}
	return h.Sum64()
}
