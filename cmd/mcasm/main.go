// Command mcasm prints the smart memory controller's microprogram: the
// assembled Appendix A micro-routines with addresses, encodings, and
// disassembly, followed by the control-store and chip-size accounting
// the thesis gives in §5.5 and Table A.1. With -exec it also runs a
// sample transaction and prints the response with its micro-cycle count.
package main

import (
	"flag"
	"fmt"

	"repro/internal/bus"
	"repro/internal/microcode"
)

func main() {
	exec := flag.Bool("exec", false, "run a demo enqueue/first transaction pair")
	flag.Parse()

	c := microcode.New()
	fmt.Println("smart memory controller microprogram (Appendix A)")
	fmt.Println()
	for i, m := range c.Program() {
		fmt.Printf("%3d  %07x  %s\n", i, m.Encode(), m)
	}
	fmt.Println()
	fmt.Printf("control store: %d instructions x %d bits = %d bits (thesis budget: under 3000)\n",
		len(c.Program()), microcode.BitsPerInstruction, c.MicrocodeBits())
	fmt.Printf("data path: %d active components (thesis: roughly 6000)\n",
		microcode.TotalComponents(microcode.DataPathComponents()))
	fmt.Printf("sequencer: %d active components (thesis: roughly 1000)\n",
		microcode.TotalComponents(microcode.SequencerComponents()))

	if *exec {
		fmt.Println()
		out, err := c.Exec(bus.CmdEnqueue, []uint16{0x0010, 0x0100})
		fmt.Printf("enqueue(0x10, 0x100): out=%v err=%v cycles=%d\n", out, err, c.LastCycles)
		out, err = c.Exec(bus.CmdEnqueue, []uint16{0x0010, 0x0200})
		fmt.Printf("enqueue(0x10, 0x200): out=%v err=%v cycles=%d\n", out, err, c.LastCycles)
		out, err = c.Exec(bus.CmdFirst, []uint16{0x0010})
		fmt.Printf("first(0x10):          out=%#04x err=%v cycles=%d\n", out, err, c.LastCycles)
	}
}
