// Command ipcd is the model-serving daemon: it exposes the core façade
// and the experiment registry over HTTP/JSON with request coalescing,
// bounded-concurrency admission control, and graceful drain.
//
// Usage:
//
//	ipcd                         serve on :8080
//	ipcd -addr :9090 -workers 8  eight concurrent computations
//	ipcd -queue 16 -timeout 30s  16 queued beyond the workers; 30s deadline
//	ipcd -pprof localhost:6060   net/http/pprof on a separate listener (off by default)
//	ipcd -trace-dir traces       sample per-request Chrome traces (every -trace-every requests)
//
// Endpoints:
//
//	POST /v1/solve            analytic GTPN solution of a workload point
//	POST /v1/simulate         replicated machine-level simulation (seeded)
//	GET  /v1/experiments      the registry, in paper order
//	GET  /v1/experiments/{id} one regenerated table/figure (?full=1 for full sweeps)
//	GET  /healthz             200 ok, 503 while draining
//	GET  /metrics             counters: requests, coalescing, queue, cache, latency
//	GET  /metrics?format=prometheus  the same counters in Prometheus text format
//	GET  /metrics/history     in-process counter time series (-history-every samples)
//
// On SIGTERM/SIGINT the daemon drains: in-flight requests complete, new
// ones are refused with 503, and the process exits once idle or after
// -drain at the latest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent computations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue beyond the workers; full queue answers 429")
		timeout      = flag.Duration("timeout", 2*time.Minute, "per-request computation deadline")
		drain        = flag.Duration("drain", 15*time.Second, "grace period for in-flight requests on shutdown")
		pprofAt      = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
		traceDir     = flag.String("trace-dir", "", "write sampled per-request Chrome traces into this directory; off when empty")
		traceEvery   = flag.Int("trace-every", 100, "with -trace-dir, trace every Nth computing request")
		historyEvery = flag.Duration("history-every", 10*time.Second, "sampling interval for the /metrics/history ring; 0 disables sampling")
		historySize  = flag.Int("history-size", 0, "samples retained by /metrics/history (0 = 360, an hour at the default interval)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ipcd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			log.Fatalf("ipcd: trace dir: %v", err)
		}
	}
	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		TraceDir:       *traceDir,
		TraceEvery:     *traceEvery,
		HistorySize:    *historySize,
	})
	if *historyEvery > 0 {
		go func() {
			tick := time.NewTicker(*historyEvery)
			defer tick.Stop()
			for t := range tick.C {
				srv.SampleMetrics(t)
			}
		}()
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Profiling stays off the serving mux and off by default: the
	// debug endpoints bind a separate listener (normally loopback) so
	// they are never exposed on the service address.
	if *pprofAt != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAt, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("ipcd: pprof on %s", *pprofAt)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("ipcd: pprof: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("ipcd: serving on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatalf("ipcd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("ipcd: draining (up to %v)", *drain)
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ipcd: shutdown: %v", err)
	}
	log.Printf("ipcd: drained, exiting")
}
