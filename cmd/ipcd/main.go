// Command ipcd is the model-serving daemon: it exposes the core façade
// and the experiment registry over HTTP/JSON with request coalescing,
// bounded-concurrency admission control, and graceful drain.
//
// Usage:
//
//	ipcd                         serve on :8080
//	ipcd -addr :9090 -workers 8  eight concurrent computations
//	ipcd -queue 16 -timeout 30s  16 queued beyond the workers; 30s deadline
//	ipcd -pprof localhost:6060   net/http/pprof on a separate listener (off by default)
//	ipcd -trace-dir traces       sample per-request Chrome traces (every -trace-every requests)
//	ipcd -resp-cache 4096        preencoded-response cache entries (negative disables)
//	ipcd -log-format json        structured JSON logs and access records on stderr
//
// Cluster mode shards the solve keyspace across a fleet of nodes by
// consistent hashing on the canonical coalescing key:
//
//	ipcd -addr :8080 -cluster-self http://10.0.0.1:8080 \
//	     -peers http://10.0.0.2:8080,http://10.0.0.3:8080
//
// Each node owns a slice of the ring, forwards misses to the owning
// peer (coalescing cluster-wide on the owner's in-flight solve), and
// replicates hot entries to the key's next ring successor. Responses
// are byte-identical whichever node answers. -cluster-listen moves the
// cluster traffic (forwards, membership, replication) onto a separate
// listener; peers must then advertise that address in -peers.
//
// Endpoints:
//
//	POST /v1/solve            analytic GTPN solution of a workload point
//	POST /v1/simulate         replicated machine-level simulation (seeded)
//	GET  /v1/experiments      the registry, in paper order
//	GET  /v1/experiments/{id} one regenerated table/figure (?full=1 for full sweeps)
//	GET  /healthz             200 ok, 503 while draining
//	GET  /metrics             counters: requests, coalescing, queue, cache, latency
//	GET  /metrics?format=prometheus  the same counters in Prometheus text format
//	                                 (OpenMetrics with exemplars when Accept asks for it)
//	GET  /metrics?scope=cluster      cluster-wide fan-out merge of every member's counters
//	GET  /metrics/history     in-process counter time series (-history-every samples)
//	GET  /metrics/history?scope=cluster  merged member time series, ordered by (time, node)
//	GET  /debug/requests      recent-request ring: IDs, routing decisions, phase timings
//	GET  /debug/requests?scope=cluster   merged member rings, ordered by (time, node)
//	GET  /debug/health        peer health: prober state machine, RTT EWMA (?scope=cluster merges)
//	GET  /debug/events        event journal: membership, drain, peer transitions, SLO breaches
//	POST /cluster/v1/{join,leave,replicate}, GET /cluster/v1/members  (cluster mode)
//
// Service objectives are tracked per route over rolling 1m/5m/30m
// windows and exposed as burn rates in /metrics and ipcd_slo_* families:
//
//	ipcd -slo "route=solve,p=99,lat=50ms" -slo "route=simulate,p=99.9"
//
// Without -slo flags a default solve p99/50ms objective is tracked; an
// explicit -slo "" disables tracking. In cluster mode each node probes
// its peers' /healthz every -probe-every (hysteresis: degraded after 2
// consecutive failures, unreachable after 4, healthy again after 2
// successes) and the forwarding tier skips known-unreachable owners.
//
// On SIGTERM/SIGINT the daemon drains: in cluster mode it first leaves
// the ring — handing its key slots to the surviving members — then
// in-flight requests complete, new ones are refused with 503, and the
// process exits once idle or after -drain at the latest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
)

// version is stamped at build time: go build -ldflags "-X main.version=v1.2.3".
var version = "dev"

// sloFlags collects repeatable -slo objective specs. An explicit empty
// value disables SLO tracking entirely (the default, with no flags, is
// the built-in solve p99/50ms objective).
type sloFlags struct {
	objectives []obs.Objective
	disabled   bool
}

func (s *sloFlags) String() string {
	names := make([]string, 0, len(s.objectives))
	for _, o := range s.objectives {
		names = append(names, o.Name())
	}
	return strings.Join(names, ",")
}

func (s *sloFlags) Set(v string) error {
	if strings.TrimSpace(v) == "" {
		s.disabled = true
		return nil
	}
	o, err := obs.ParseObjective(v)
	if err != nil {
		return err
	}
	s.objectives = append(s.objectives, o)
	return nil
}

// config reports the service-level objective list: nil for the default
// objective, empty for disabled, else the parsed flags.
func (s *sloFlags) config() []obs.Objective {
	if s.disabled {
		return []obs.Objective{}
	}
	return s.objectives
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent computations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue beyond the workers; full queue answers 429")
		timeout      = flag.Duration("timeout", 2*time.Minute, "per-request computation deadline")
		drain        = flag.Duration("drain", 15*time.Second, "grace period for in-flight requests on shutdown")
		pprofAt      = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
		traceDir     = flag.String("trace-dir", "", "write sampled per-request Chrome traces into this directory; off when empty")
		traceEvery   = flag.Int("trace-every", 100, "with -trace-dir, trace every Nth computing request")
		historyEvery = flag.Duration("history-every", 10*time.Second, "sampling interval for the /metrics/history ring; 0 disables sampling")
		historySize  = flag.Int("history-size", 0, "samples retained by /metrics/history (0 = 360, an hour at the default interval)")
		respCache    = flag.Int("resp-cache", 0, "preencoded-response cache entries (0 = 1024, negative disables)")
		respCacheB   = flag.Int64("resp-cache-bytes", 0, "preencoded-response cache byte bound (0 = 64 MiB, negative = unbounded)")

		peers         = flag.String("peers", "", "comma-separated base URLs of the cluster's nodes (may include this one); empty = single-node")
		clusterSelf   = flag.String("cluster-self", "", "this node's advertised base URL on the ring (required with -peers)")
		clusterListen = flag.String("cluster-listen", "", "serve cluster traffic (forwards, membership, replication) on this separate address; empty = the main listener")
		vnodes        = flag.Int("cluster-vnodes", 0, "virtual nodes per member on the hash ring (0 = 64)")
		replicas      = flag.Int("cluster-replicas", 0, "ring successors receiving each hot entry (0 = 1, negative disables replication)")

		logFormat = flag.String("log-format", "text", "structured log encoding on stderr: text or json")
		nodeName  = flag.String("node-name", "", "this node's name in request IDs, traces and access logs (default: -cluster-self host, else \"ipcd\")")
		recentReq = flag.Int("recent-requests", 0, "requests retained by the /debug/requests ring (0 = 128)")

		probeEvery  = flag.Duration("probe-every", time.Second, "peer health probe interval in cluster mode; 0 disables probing")
		eventsSize  = flag.Int("events", 0, "events retained by the /debug/events journal ring (0 = 256)")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	var slo sloFlags
	flag.Var(&slo, "slo", `service objective, repeatable: "route=solve,p=99,lat=50ms" (empty disables; default: solve p99 under 50ms)`)
	flag.Parse()
	if *showVersion {
		fmt.Println("ipcd " + version)
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ipcd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	// One slog.Logger carries both daemon lifecycle records and the
	// per-request access log; -log-format json makes every line (and
	// therefore the smoke tests' assertions) machine-parseable.
	var logHandler slog.Handler
	switch *logFormat {
	case "text":
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "ipcd: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(logHandler)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	name := *nodeName
	if name == "" && *clusterSelf != "" {
		// A cluster node defaults to its advertised host:port — unique
		// within the fleet, so merged traces and logs stay attributable.
		if u, err := url.Parse(*clusterSelf); err == nil && u.Host != "" {
			name = u.Host
		}
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal("trace dir", "err", err)
		}
	}
	// One journal per process, shared by the serving and cluster tiers:
	// drains, sheds, SLO breaches, membership changes and peer health
	// transitions land in one /debug/events ring (and the structured log).
	journalName := name
	if journalName == "" {
		journalName = "ipcd"
	}
	journal := obs.NewJournal(*eventsSize, logger, journalName)
	var node *cluster.Node
	if *peers != "" {
		if *clusterSelf == "" {
			fatal("-peers requires -cluster-self (this node's advertised URL)")
		}
		var err error
		node, err = cluster.New(cluster.Config{
			Self:         *clusterSelf,
			Peers:        strings.Split(*peers, ","),
			VirtualNodes: *vnodes,
			Replicas:     *replicas,
			Journal:      journal,
		})
		if err != nil {
			fatal("cluster", "err", err)
		}
	}
	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		RequestTimeout:   *timeout,
		TraceDir:         *traceDir,
		TraceEvery:       *traceEvery,
		HistorySize:      *historySize,
		RespCacheEntries: *respCache,
		RespCacheBytes:   *respCacheB,
		NodeName:         name,
		RecentRequests:   *recentReq,
		AccessLog:        logger,
		SLO:              slo.config(),
		Journal:          journal,
		Version:          version,
	}
	if node != nil {
		cfg.Cluster = node
	}
	srv := service.New(cfg)
	if node != nil {
		node.Bind(srv)
	}

	// The signal context exists before any background goroutine so every
	// ticker loop below exits on shutdown instead of leaking.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *historyEvery > 0 {
		go func() {
			tick := time.NewTicker(*historyEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case t := <-tick.C:
					srv.SampleMetrics(t)
				}
			}
		}()
	}
	// The SLO clock: one tick per second rolls the current sample into
	// the 1m/5m/30m windows (a no-op when tracking is disabled).
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-tick.C:
				srv.TickSLO(t)
			}
		}
	}()
	if node != nil {
		go node.StartProber(ctx, *probeEvery)
	}
	// In cluster mode the cluster endpoints either share the main
	// listener or get their own; either way forwarded /v1/* requests
	// reach the same serving mux.
	handler := srv.Handler()
	if node != nil && *clusterListen == "" {
		handler = node.Handler()
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if node != nil && *clusterListen != "" {
		csrv := &http.Server{Addr: *clusterListen, Handler: node.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("cluster listener", "addr", *clusterListen)
			if err := csrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("cluster listener", "err", err)
			}
		}()
	}

	// Profiling stays off the serving mux and off by default: the
	// debug endpoints bind a separate listener (normally loopback) so
	// they are never exposed on the service address.
	if *pprofAt != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAt, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listener", "addr", *pprofAt)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "node", name, "version", version)
	if node != nil {
		// Announce this node to the fleet once the listeners are up; peers
		// listed statically already route to us, so a failed announcement
		// only matters for members our own -peers list missed.
		go func() {
			jctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			if err := node.Join(jctx); err != nil {
				logger.Error("cluster join", "err", err)
			}
			logger.Info("cluster joined", "members", strings.Join(node.Members(), ","))
		}()
	}

	select {
	case err := <-errCh:
		fatal("listen", "err", err)
	case <-ctx.Done():
	}

	if node != nil {
		// Hand the ring slots off BEFORE refusing traffic: peers stop
		// routing here, and anything still arriving mid-drain is forwarded
		// to the new owner — byte-identical either way.
		lctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := node.Leave(lctx); err != nil {
			logger.Error("cluster leave", "err", err)
		}
		cancel()
	}
	logger.Info("draining", "grace", drain.String())
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
	}
	logger.Info("drained, exiting")
}
