package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// cannedNode serves fixed observability bodies — the snapshot must be a
// pure function of them.
func cannedNode(t *testing.T, metrics, health, events string) string {
	t.Helper()
	mux := http.NewServeMux()
	serve := func(body string) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(body))
		}
	}
	mux.HandleFunc("/metrics", serve(metrics))
	mux.HandleFunc("/debug/health", serve(health))
	mux.HandleFunc("/debug/events", serve(events))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

func testFleet(t *testing.T) []string {
	t.Helper()
	n0 := cannedNode(t,
		`{"resp_cache":{"hits":3,"misses":1},
		  "serving":{"requests_total":10,"errors":1,"in_flight":0,"coalesced":2,
		             "latency_us":{"solve":{"p50_us":120,"p99_us":900}}},
		  "slo":{"objectives":[{"name":"solve:p99:lat50ms","route":"solve",
		         "windows":[{"window":"1m","burn_milli":2500,"breached":true},
		                    {"window":"5m","burn_milli":100,"breached":false}]}]}}`,
		`{"node":"n0","epoch":2,"peers":[{"peer":"http://b","state":"degraded","unix_ms":500}]}`,
		`{"node":"n0","capacity":16,"events":[
		   {"unix_ms":2000,"seq":1,"type":"drain","subject":"n0","detail":"drain begun"}]}`)
	n1 := cannedNode(t,
		`{"resp_cache":{"hits":0,"misses":0},
		  "serving":{"requests_total":4,"errors":0,"in_flight":1,"coalesced":0,
		             "latency_us":{"solve":{"p50_us":80,"p99_us":300}}},
		  "slo":{"objectives":[]}}`,
		`{"node":"n1","epoch":2,"peers":[{"peer":"http://a","state":"healthy","unix_ms":0}]}`,
		`{"node":"n1","capacity":16,"events":[
		   {"unix_ms":1000,"seq":1,"type":"membership","subject":"http://a","detail":"joined epoch=1"},
		   {"unix_ms":2000,"seq":2,"type":"peer_health","subject":"http://a","detail":"healthy->degraded"}]}`)
	// A dead member stays in the listing as unreachable.
	return []string{n0, n1, "http://127.0.0.1:1"}
}

// The -once -json snapshot: nodes in target order, fields extracted from
// the polled bodies, journals merged by (unix_ms, node, seq), the dead
// target reported — and the encoded document byte-identical across
// polls of unchanged nodes.
func TestSnapshotDeterministic(t *testing.T) {
	targets := testFleet(t)
	client := &http.Client{Timeout: 2 * time.Second}

	b1 := service.MarshalDeterministic(collect(client, targets))
	b2 := service.MarshalDeterministic(collect(client, targets))
	if !bytes.Equal(b1, b2) {
		t.Fatalf("snapshot not byte-stable:\n%s\nvs\n%s", b1, b2)
	}

	var doc struct {
		Nodes []struct {
			Target        string  `json:"target"`
			Reachable     bool    `json:"reachable"`
			Node          string  `json:"node"`
			RequestsTotal float64 `json:"requests_total"`
			SolveP99US    float64 `json:"solve_p99_us"`
			HitPPM        float64 `json:"resp_cache_hit_ppm"`
			SLO           []struct {
				Name string `json:"name"`
			} `json:"slo"`
			Peers []struct {
				Peer  string `json:"peer"`
				State string `json:"state"`
			} `json:"peers"`
		} `json:"nodes"`
		Events []struct {
			Node    string  `json:"node"`
			Type    string  `json:"type"`
			UnixMS  float64 `json:"unix_ms"`
			Seq     float64 `json:"seq"`
			Subject string  `json:"subject"`
		} `json:"events"`
		Unreachable []string `json:"unreachable"`
	}
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, b1)
	}
	if len(doc.Nodes) != 3 {
		t.Fatalf("nodes = %d, want one per target", len(doc.Nodes))
	}
	n0, n1, dead := doc.Nodes[0], doc.Nodes[1], doc.Nodes[2]
	if n0.Node != "n0" || !n0.Reachable || n0.RequestsTotal != 10 || n0.SolveP99US != 900 {
		t.Fatalf("n0 row = %+v", n0)
	}
	if n0.HitPPM != 750_000 {
		t.Fatalf("n0 hit ppm = %v, want 750000 (3 of 4)", n0.HitPPM)
	}
	if len(n0.SLO) != 1 || n0.SLO[0].Name != "solve:p99:lat50ms" {
		t.Fatalf("n0 slo = %+v", n0.SLO)
	}
	if len(n0.Peers) != 1 || n0.Peers[0].State != "degraded" {
		t.Fatalf("n0 peers = %+v", n0.Peers)
	}
	if n1.Node != "n1" || len(n1.SLO) != 0 {
		t.Fatalf("n1 row = %+v", n1)
	}
	if dead.Reachable || dead.Target != targets[2] {
		t.Fatalf("dead row = %+v", dead)
	}
	if len(doc.Unreachable) != 1 || doc.Unreachable[0] != targets[2] {
		t.Fatalf("unreachable = %v", doc.Unreachable)
	}

	// Merge order: n1's 1000ms event first, then the two 2000ms events
	// tied on timestamp and broken by node name (n0 before n1).
	wantOrder := []struct{ node, typ string }{
		{"n1", "membership"}, {"n0", "drain"}, {"n1", "peer_health"},
	}
	if len(doc.Events) != len(wantOrder) {
		t.Fatalf("merged events = %+v, want %d rows", doc.Events, len(wantOrder))
	}
	for i, want := range wantOrder {
		if doc.Events[i].Node != want.node || doc.Events[i].Type != want.typ {
			t.Fatalf("merged event %d = %+v, want %s/%s\nall: %+v",
				i, doc.Events[i], want.node, want.typ, doc.Events)
		}
	}
}

// The terminal frame: one row per node with QPS derived from the
// counter delta against the previous frame, DOWN rows for dead targets,
// and the merged event tail.
func TestRenderFrame(t *testing.T) {
	targets := testFleet(t)
	client := &http.Client{Timeout: 2 * time.Second}
	snap := collect(client, targets)

	prev := collect(client, targets)
	prevNodes := prev["nodes"].([]any)
	prevNodes[0].(map[string]any)["requests_total"] = float64(5) // 10 now: +5 in 1s

	var buf bytes.Buffer
	render(&buf, snap, prev, time.Second, 10, false)
	out := buf.String()
	for _, want := range []string{
		"n0", "n1", "DOWN",
		"5.0",         // n0 QPS from the delta
		"2.50x!",      // n0 1m burn, breached
		"0/1 healthy", // n0's one peer is degraded
		"peer_health", // event tail
		"drain begun",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
}
