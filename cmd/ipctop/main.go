// Command ipctop is a terminal fleet dashboard for ipcd: it polls every
// -targets node's /metrics, /debug/health and /debug/events, and renders
// a refreshing per-node view — request totals and QPS, solve latency
// p50/p99, response-cache hit ratio, SLO burn rates, peer health — above
// the fleet's merged event journal.
//
// The poll fans out to each node's LOCAL scope and merges client-side
// (the same (unix_ms, node, seq) order the cluster's own ?scope=cluster
// merge uses), so the dashboard works identically against one node, a
// full cluster, or a partial target list — and keeps working while
// members are down: a dead node renders as unreachable, it never blanks
// the view.
//
// Usage:
//
//	ipctop -targets http://n1:8080,http://n2:8080,http://n3:8080
//	ipctop -targets http://localhost:8080 -every 1s
//	ipctop -targets ... -once -json     one deterministic snapshot document
//
// -once -json prints a single machine-readable snapshot (deterministic
// encoding, nodes in target order, events merged) and exits — the form
// the tests and the CI smoke consume.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		targets = flag.String("targets", "http://localhost:8080", "comma-separated ipcd base URLs, polled in order")
		every   = flag.Duration("every", 2*time.Second, "refresh interval")
		timeout = flag.Duration("timeout", 2*time.Second, "per-endpoint poll timeout")
		once    = flag.Bool("once", false, "poll once and exit instead of refreshing")
		asJSON  = flag.Bool("json", false, "print snapshots as deterministic JSON documents instead of the terminal view")
		events  = flag.Int("events", 10, "merged journal events shown in the terminal view")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ipctop: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	var list []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			list = append(list, strings.TrimRight(t, "/"))
		}
	}
	if len(list) == 0 {
		fmt.Fprintln(os.Stderr, "ipctop: -targets must name at least one URL")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}

	var prev map[string]any
	var prevAt time.Time
	for {
		snap := collect(client, list)
		now := time.Now()
		if *asJSON {
			os.Stdout.Write(service.MarshalDeterministic(snap))
			os.Stdout.WriteString("\n")
		} else {
			render(os.Stdout, snap, prev, now.Sub(prevAt), *events, !*once)
		}
		if *once {
			return
		}
		prev, prevAt = snap, now
		time.Sleep(*every)
	}
}

// collect polls every target's local observability endpoints and builds
// one snapshot document: nodes in target order, the fleet's journals
// merged by (unix_ms, node, seq). The document is a pure function of the
// polled bodies, so a snapshot over unchanged nodes is byte-stable under
// the deterministic encoding.
func collect(client *http.Client, targets []string) map[string]any {
	type tagged struct {
		unixMS float64
		node   string
		seq    int
		entry  map[string]any
	}
	var merged []tagged
	nodes := make([]any, 0, len(targets))
	unreachable := []string{}
	for _, target := range targets {
		metrics, errM := fetchJSON(client, target+"/metrics")
		health, errH := fetchJSON(client, target+"/debug/health")
		events, errE := fetchJSON(client, target+"/debug/events")
		if errM != nil || errH != nil || errE != nil {
			unreachable = append(unreachable, target)
			nodes = append(nodes, map[string]any{"target": target, "reachable": false})
			continue
		}
		name, _ := health["node"].(string)
		if name == "" {
			name = target
		}
		serving, _ := metrics["serving"].(map[string]any)
		node := map[string]any{
			"target":             target,
			"reachable":          true,
			"node":               name,
			"epoch":              health["epoch"],
			"requests_total":     num(serving, "requests_total"),
			"errors":             num(serving, "errors"),
			"in_flight":          num(serving, "in_flight"),
			"coalesced":          num(serving, "coalesced"),
			"solve_p50_us":       num(serving, "latency_us", "solve", "p50_us"),
			"solve_p99_us":       num(serving, "latency_us", "solve", "p99_us"),
			"resp_cache_hit_ppm": hitPPM(metrics),
			"slo":                objectives(metrics),
			"peers":              peerList(health),
			"events_in_journal":  float64(len(eventList(events))),
		}
		nodes = append(nodes, node)
		for i, ev := range eventList(events) {
			ev["node"] = name
			ts, _ := ev["unix_ms"].(float64)
			merged = append(merged, tagged{unixMS: ts, node: name, seq: i, entry: ev})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].unixMS != merged[j].unixMS {
			return merged[i].unixMS < merged[j].unixMS
		}
		if merged[i].node != merged[j].node {
			return merged[i].node < merged[j].node
		}
		return merged[i].seq < merged[j].seq
	})
	mergedEvents := make([]any, 0, len(merged))
	for _, t := range merged {
		mergedEvents = append(mergedEvents, t.entry)
	}
	return map[string]any{
		"targets":     targets,
		"nodes":       nodes,
		"events":      mergedEvents,
		"unreachable": unreachable,
	}
}

// render paints one terminal frame: a per-node table, then the tail of
// the merged event journal. QPS needs two frames (a counter delta); the
// first frame and -once show "-".
func render(w io.Writer, snap, prev map[string]any, elapsed time.Duration, eventRows int, clear bool) {
	if clear {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	fmt.Fprintf(w, "ipctop  %d node(s)\n\n", len(anyList(snap, "nodes")))
	fmt.Fprintf(w, "%-12s %-6s %10s %8s %9s %9s %6s %8s %-s\n",
		"NODE", "UP", "REQS", "QPS", "P50(us)", "P99(us)", "HIT%", "BURN1m", "PEERS")
	prevByTarget := map[string]map[string]any{}
	for _, n := range anyList(prev, "nodes") {
		if nm, ok := n.(map[string]any); ok {
			t, _ := nm["target"].(string)
			prevByTarget[t] = nm
		}
	}
	for _, n := range anyList(snap, "nodes") {
		nm, _ := n.(map[string]any)
		target, _ := nm["target"].(string)
		if up, _ := nm["reachable"].(bool); !up {
			fmt.Fprintf(w, "%-12s %-6s\n", target, "DOWN")
			continue
		}
		name, _ := nm["node"].(string)
		reqs := num(nm, "requests_total")
		qps := "-"
		if p := prevByTarget[target]; p != nil && elapsed > 0 {
			if d := reqs - num(p, "requests_total"); d >= 0 {
				qps = fmt.Sprintf("%.1f", d/elapsed.Seconds())
			}
		}
		hit := num(nm, "resp_cache_hit_ppm") / 10_000 // ppm -> percent
		fmt.Fprintf(w, "%-12s %-6s %10.0f %8s %9.0f %9.0f %5.1f%% %8s %-s\n",
			name, "ok", reqs, qps,
			num(nm, "solve_p50_us"), num(nm, "solve_p99_us"), hit,
			burn1m(nm), peerSummary(nm))
	}
	evs := anyList(snap, "events")
	if len(evs) > eventRows {
		evs = evs[len(evs)-eventRows:]
	}
	if len(evs) > 0 {
		fmt.Fprintf(w, "\nrecent events:\n")
		for _, e := range evs {
			em, _ := e.(map[string]any)
			fmt.Fprintf(w, "  %13.0f %-10s %-12s %s %s\n",
				num(em, "unix_ms"), em["node"], em["type"], em["subject"], em["detail"])
		}
	}
}

// burn1m reports the node's worst 1m burn rate across objectives, with a
// breach marker, or "-" when SLO tracking is off.
func burn1m(node map[string]any) string {
	worst, breached, have := 0.0, false, false
	for _, o := range anyList(node, "slo") {
		om, _ := o.(map[string]any)
		for _, win := range anyList(om, "windows") {
			wm, _ := win.(map[string]any)
			if wm["window"] != "1m" {
				continue
			}
			have = true
			if b := num(wm, "burn_milli"); b > worst {
				worst = b
			}
			if br, _ := wm["breached"].(bool); br {
				breached = true
			}
		}
	}
	if !have {
		return "-"
	}
	out := fmt.Sprintf("%.2fx", worst/1000)
	if breached {
		out += "!"
	}
	return out
}

// peerSummary renders "2/3 healthy" plus any non-healthy peers by state.
func peerSummary(node map[string]any) string {
	peers := anyList(node, "peers")
	if len(peers) == 0 {
		return "-"
	}
	healthy := 0
	var bad []string
	for _, p := range peers {
		pm, _ := p.(map[string]any)
		if st, _ := pm["state"].(string); st == "healthy" {
			healthy++
		} else {
			pr, _ := pm["peer"].(string)
			st, _ := pm["state"].(string)
			bad = append(bad, pr+"="+st)
		}
	}
	out := fmt.Sprintf("%d/%d healthy", healthy, len(peers))
	if len(bad) > 0 {
		out += " (" + strings.Join(bad, " ") + ")"
	}
	return out
}

// hitPPM derives the response-cache hit ratio in parts per million from
// a /metrics document (integer, so the snapshot encoding stays exact).
func hitPPM(metrics map[string]any) float64 {
	rc, _ := metrics["resp_cache"].(map[string]any)
	hits, misses := num(rc, "hits"), num(rc, "misses")
	if hits+misses == 0 {
		return 0
	}
	return float64(int64(hits * 1e6 / (hits + misses)))
}

// objectives extracts the /metrics SLO objective list (empty when
// tracking is disabled).
func objectives(metrics map[string]any) []any {
	slo, _ := metrics["slo"].(map[string]any)
	return anyList(slo, "objectives")
}

// peerList extracts a /debug/health document's peer rows.
func peerList(health map[string]any) []any { return anyList(health, "peers") }

// eventList extracts a /debug/events document's rows as mutable maps.
func eventList(events map[string]any) []map[string]any {
	raw := anyList(events, "events")
	out := make([]map[string]any, 0, len(raw))
	for _, e := range raw {
		if em, ok := e.(map[string]any); ok {
			out = append(out, em)
		}
	}
	return out
}

// anyList reads doc[key] as a list, nil-safe on every level.
func anyList(doc map[string]any, key string) []any {
	if doc == nil {
		return nil
	}
	l, _ := doc[key].([]any)
	return l
}

// num walks nested objects and reads a float64 leaf, zero when any step
// is missing.
func num(doc map[string]any, keys ...string) float64 {
	cur := doc
	for i, k := range keys {
		if cur == nil {
			return 0
		}
		if i == len(keys)-1 {
			v, _ := cur[k].(float64)
			return v
		}
		cur, _ = cur[k].(map[string]any)
	}
	return 0
}

func fetchJSON(client *http.Client, url string) (map[string]any, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s answered %d", url, resp.StatusCode)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	return doc, nil
}
