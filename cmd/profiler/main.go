// Command profiler reproduces the chapter 3 measurement study: it runs
// the instrumented miniature kernels (Charlotte, Jasmin, 925, Unix local
// and non-local) through the §3.3 profiling machinery and prints the
// round-trip breakdowns of Tables 3.1-3.5, plus the Unix service-time
// tables 3.6 and 3.7. With -trace the same kernel runs are re-executed
// under a span recorder and written as one Chrome trace (a process per
// profiled system); the printed tables are unaffected.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/profile"
	"repro/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "fewer kernel-run rounds")
	traceOut := flag.String("trace", "", "also write a Chrome trace of the profiled kernel runs to this file")
	flag.Parse()
	cfg := experiments.Config{Quick: *quick}
	for _, id := range []string{"T3.1", "T3.2", "T3.3", "T3.4", "T3.5", "T3.6", "T3.7"} {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "profiler: experiment %s not registered\n", id)
			os.Exit(1)
		}
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "profiler: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "profiler: %v\n", err)
			os.Exit(1)
		}
	}
}

// spanObserver adapts a trace recorder track to profile.SpanObserver.
type spanObserver struct {
	rec   *trace.Recorder
	proc  int32
	track int32
}

func (o spanObserver) Span(name string, startUS, durUS int64) {
	o.rec.Emit(o.proc, o.track, name, "kernel", startUS, durUS)
}

func (o spanObserver) Instant(name string, atUS, arg int64) {
	o.rec.Instant(o.proc, o.track, name, "path", atUS, arg)
}

// writeTrace re-runs the Table 3.1-3.5 kernel runs under a microsecond
// span recorder — one trace process per profiled system — and writes the
// combined Chrome trace.
func writeTrace(path string, quick bool) error {
	rounds := 500
	if quick {
		rounds = 100
	}
	rec := trace.New(trace.DefaultCapacity, 1) // the §3.3 timer ticks in microseconds
	for i, sys := range profile.AllSystems() {
		proc := int32(i)
		rec.RegisterProcess(proc, sys.System)
		obs := spanObserver{rec: rec, proc: proc, track: rec.Track(proc, "kernel")}
		profile.KernelRunTraced(sys, rounds, 2, obs)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
