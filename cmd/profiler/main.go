// Command profiler reproduces the chapter 3 measurement study: it runs
// the instrumented miniature kernels (Charlotte, Jasmin, 925, Unix local
// and non-local) through the §3.3 profiling machinery and prints the
// round-trip breakdowns of Tables 3.1-3.5, plus the Unix service-time
// tables 3.6 and 3.7.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "fewer kernel-run rounds")
	flag.Parse()
	cfg := experiments.Config{Quick: *quick}
	for _, id := range []string{"T3.1", "T3.2", "T3.3", "T3.4", "T3.5", "T3.6", "T3.7"} {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "profiler: experiment %s not registered\n", id)
			os.Exit(1)
		}
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "profiler: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
