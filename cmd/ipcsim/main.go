// Command ipcsim runs the machine-level discrete-event simulation of one
// of the four node architectures under the §6.3 conversation workload
// and, optionally, compares it with the analytical model — the Figure
// 6.15 validation from the command line.
//
// Usage:
//
//	ipcsim -arch 2 -n 3 -x 2850            local conversations
//	ipcsim -arch 2 -n 3 -x 2850 -nonlocal  clients node 0, servers node 1
//	ipcsim -reps 8 -parallel 4 ...         average eight replications, four at a time
//	ipcsim ... -validate                   also solve the model and compare
//	ipcsim ... -trace out.json             Chrome trace of replication 0 + activity breakdown
//	ipcsim ... -counters                   hardware performance-counter report for replication 0
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/counters"
	"repro/internal/des"
	"repro/internal/gtpn"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		arch     = flag.Int("arch", 2, "architecture 1-4")
		n        = flag.Int("n", 2, "simultaneous conversations")
		x        = flag.Int64("x", 0, "mean server compute time (us)")
		hosts    = flag.Int("hosts", 1, "host processors per node")
		nonlocal = flag.Bool("nonlocal", false, "non-local conversations over the token ring")
		seconds  = flag.Int64("seconds", 20, "simulated horizon")
		seed     = flag.Uint64("seed", 42, "random seed")
		reps     = flag.Int("reps", 1, "independent replications to average (seeds derived from -seed)")
		parallel = flag.Int("parallel", 0, "workers for the replications (0 = GOMAXPROCS; any value gives identical results)")
		validate = flag.Bool("validate", false, "compare against the GTPN model")
		stats    = flag.Bool("cachestats", false, "print GTPN solve-cache statistics to stderr on exit")
		traceOut = flag.String("trace", "", "write a Chrome trace of replication 0 to this file and print an activity breakdown")
		ctrs     = flag.Bool("counters", false, "print replication 0's hardware performance-counter report")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ipcsim: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *arch < 1 || *arch > 4 {
		fmt.Fprintln(os.Stderr, "ipcsim: -arch must be 1..4")
		flag.Usage()
		os.Exit(2)
	}
	if *n < 1 || *reps < 1 || *seconds < 1 {
		fmt.Fprintln(os.Stderr, "ipcsim: -n, -reps, and -seconds must be >= 1")
		flag.Usage()
		os.Exit(2)
	}
	if *stats {
		defer func() {
			s := gtpn.SolveCacheStats()
			fmt.Fprintf(os.Stderr, "gtpn solve cache: %d hits, %d misses, %d bypassed, %d entries\n",
				s.Hits, s.Misses, s.Bypassed, s.Entries)
		}()
	}
	a := timing.Arch(*arch)
	p := workload.Params{Conversations: *n, ComputeMean: *x * des.Microsecond}
	// Tracing attaches to replication 0 only: its seed derivation does
	// not depend on the worker count, so the trace is byte-identical at
	// any -parallel setting.
	var tracer *trace.Recorder
	if *traceOut != "" {
		tracer = trace.New(trace.DefaultCapacity, des.Microsecond)
		tracer.RegisterProcess(0, "ipcsim")
	}
	// Counters attach to replication 0 only, like the tracer, so the
	// report is byte-identical at any -parallel setting.
	var reg *counters.Registry
	if *ctrs {
		reg = counters.New()
	}
	res, rep0, samples := runReplicated(a, *nonlocal, *hosts, *seed, *reps, *parallel, p, *seconds*des.Second, tracer, reg)

	locality := "local"
	if *nonlocal {
		locality = "non-local"
	}
	fmt.Printf("architecture %v, %s, n=%d, X=%d us, hosts=%d, %ds simulated\n",
		a, locality, *n, *x, *hosts, *seconds)
	if *reps > 1 {
		fmt.Printf("  replications    %d\n", *reps)
	}
	fmt.Printf("  round trips     %d\n", res.RoundTrips)
	fmt.Printf("  throughput      %.2f round trips/s\n", res.Throughput*1e6)
	fmt.Printf("  mean round trip %.1f us\n", res.MeanRoundTrip)

	if *validate {
		var tput float64
		if *nonlocal {
			sol, err := models.SolveNonLocal(a, *n, *hosts, float64(*x), models.SolveOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipcsim: model: %v\n", err)
				os.Exit(1)
			}
			tput = sol.Throughput
		} else {
			sol, err := models.BuildLocal(a, *n, *hosts, float64(*x)).Solve(models.SolveOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipcsim: model: %v\n", err)
				os.Exit(1)
			}
			tput = sol.Throughput
		}
		dev := (res.Throughput - tput) / tput * 100
		fmt.Printf("  model           %.2f round trips/s (simulation %+.1f%%)\n", tput*1e6, dev)
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcsim: %v\n", err)
			os.Exit(1)
		}
		if err := tracer.WriteChrome(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcsim: write trace: %v\n", err)
			os.Exit(1)
		}
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "ipcsim: trace ring dropped %d oldest events (timeline truncated; breakdown totals stay exact)\n", d)
		}
		fmt.Printf("\nActivity breakdown (replication 0, %d round trips):\n", rep0.RoundTrips)
		if err := trace.WriteBreakdown(os.Stdout, tracer.Breakdown(rep0.RoundTrips)); err != nil {
			fmt.Fprintf(os.Stderr, "ipcsim: breakdown: %v\n", err)
			os.Exit(1)
		}
	}

	if *ctrs {
		fmt.Printf("\nHardware counters (replication 0, %d round trips):\n", rep0.RoundTrips)
		if err := counters.WriteText(os.Stdout, samples); err != nil {
			fmt.Fprintf(os.Stderr, "ipcsim: counters: %v\n", err)
			os.Exit(1)
		}
	}
}

// runReplicated runs reps independent machine simulations (seeds derived
// from seed by replication index) on a bounded worker pool and averages
// the measures in replication order, so the reported numbers are
// identical at any worker count. The tracer and the counter registry (if
// any) attach to replication 0 only; rep0 is that replication's own
// result, and samples is its counter snapshot at the horizon.
func runReplicated(a timing.Arch, nonlocal bool, hosts int, seed uint64, reps, workers int, p workload.Params, horizon int64, tracer *trace.Recorder, reg *counters.Registry) (agg, rep0 workload.Result, samples []counters.Sample) {
	if reps < 2 {
		m := newMachine(a, nonlocal, machine.Config{Hosts: hosts, Seed: seed, Tracer: tracer, Counters: reg})
		res := m.Run(p, horizon)
		return res, res, m.CounterSnapshot()
	}
	seeds := make([]uint64, reps)
	src := rng.New(seed)
	for i := range seeds {
		seeds[i] = src.Uint64()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}
	results := make([]workload.Result, reps)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cfg := machine.Config{Hosts: hosts, Seed: seeds[i]}
				if i == 0 {
					cfg.Tracer = tracer
					cfg.Counters = reg
				}
				m := newMachine(a, nonlocal, cfg)
				results[i] = m.Run(p, horizon)
				if i == 0 {
					samples = m.CounterSnapshot()
				}
			}
		}()
	}
	for i := 0; i < reps; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, r := range results {
		agg.RoundTrips += r.RoundTrips
		agg.Throughput += r.Throughput
		agg.MeanRoundTrip += r.MeanRoundTrip
	}
	agg.Throughput /= float64(reps)
	agg.MeanRoundTrip /= float64(reps)
	return agg, results[0], samples
}

func newMachine(a timing.Arch, nonlocal bool, cfg machine.Config) *machine.Machine {
	if nonlocal {
		return machine.NewNonLocal(a, cfg)
	}
	return machine.NewLocal(a, cfg)
}
