// Command ipcsim runs the machine-level discrete-event simulation of one
// of the four node architectures under the §6.3 conversation workload
// and, optionally, compares it with the analytical model — the Figure
// 6.15 validation from the command line.
//
// Usage:
//
//	ipcsim -arch 2 -n 3 -x 2850            local conversations
//	ipcsim -arch 2 -n 3 -x 2850 -nonlocal  clients node 0, servers node 1
//	ipcsim ... -validate                   also solve the model and compare
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/timing"
	"repro/internal/workload"
)

func main() {
	var (
		arch     = flag.Int("arch", 2, "architecture 1-4")
		n        = flag.Int("n", 2, "simultaneous conversations")
		x        = flag.Int64("x", 0, "mean server compute time (us)")
		hosts    = flag.Int("hosts", 1, "host processors per node")
		nonlocal = flag.Bool("nonlocal", false, "non-local conversations over the token ring")
		seconds  = flag.Int64("seconds", 20, "simulated horizon")
		seed     = flag.Uint64("seed", 42, "random seed")
		validate = flag.Bool("validate", false, "compare against the GTPN model")
	)
	flag.Parse()
	if *arch < 1 || *arch > 4 {
		fmt.Fprintln(os.Stderr, "ipcsim: -arch must be 1..4")
		os.Exit(1)
	}
	a := timing.Arch(*arch)
	cfg := machine.Config{Hosts: *hosts, Seed: *seed}
	var m *machine.Machine
	if *nonlocal {
		m = machine.NewNonLocal(a, cfg)
	} else {
		m = machine.NewLocal(a, cfg)
	}
	p := workload.Params{Conversations: *n, ComputeMean: *x * des.Microsecond}
	res := m.Run(p, *seconds*des.Second)

	locality := "local"
	if *nonlocal {
		locality = "non-local"
	}
	fmt.Printf("architecture %v, %s, n=%d, X=%d us, hosts=%d, %ds simulated\n",
		a, locality, *n, *x, *hosts, *seconds)
	fmt.Printf("  round trips     %d\n", res.RoundTrips)
	fmt.Printf("  throughput      %.2f round trips/s\n", res.Throughput*1e6)
	fmt.Printf("  mean round trip %.1f us\n", res.MeanRoundTrip)

	if *validate {
		var tput float64
		if *nonlocal {
			sol, err := models.SolveNonLocal(a, *n, *hosts, float64(*x), models.SolveOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipcsim: model: %v\n", err)
				os.Exit(1)
			}
			tput = sol.Throughput
		} else {
			sol, err := models.BuildLocal(a, *n, *hosts, float64(*x)).Solve(models.SolveOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipcsim: model: %v\n", err)
				os.Exit(1)
			}
			tput = sol.Throughput
		}
		dev := (res.Throughput - tput) / tput * 100
		fmt.Printf("  model           %.2f round trips/s (simulation %+.1f%%)\n", tput*1e6, dev)
	}
}
