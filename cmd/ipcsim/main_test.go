package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/counters"
	"repro/internal/des"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden trace under testdata/golden")

// traceRun performs the fixed-seed replicated simulation that -trace
// exposes and returns the serialized Chrome trace of replication 0.
func traceRun(t *testing.T, workers int) []byte {
	t.Helper()
	tracer := trace.New(trace.DefaultCapacity, des.Microsecond)
	tracer.RegisterProcess(0, "ipcsim")
	p := workload.Params{Conversations: 2, ComputeMean: 1140 * des.Microsecond}
	_, rep0, _ := runReplicated(timing.ArchII, false, 1, 42, 3, workers, p, 50*des.Millisecond, tracer, nil)
	if rep0.RoundTrips == 0 {
		t.Fatal("replication 0 completed no round trips")
	}
	if d := tracer.Dropped(); d > 0 {
		t.Fatalf("trace ring dropped %d events; enlarge the horizon/capacity ratio", d)
	}
	var buf bytes.Buffer
	if err := tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGolden pins the Chrome trace of a fixed-seed run to a
// snapshot: the trace must be byte-identical across runs and across
// worker counts (replication 0's seed derivation is independent of
// -parallel), and must parse as a trace-event JSON document.
// Regenerate with:
//
//	go test ./cmd/ipcsim -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	got := traceRun(t, 1)

	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"Syscall Send", "Process Send", "Match", "Restart Task", "Compute"} {
		if !names[want] {
			t.Errorf("span %q missing from trace", want)
		}
	}

	golden := filepath.Join("testdata", "golden", "trace-archII-local.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace deviates from golden snapshot (%d vs %d bytes); run with -update if the change is intended",
			len(got), len(want))
	}
}

// TestTraceParallelismInvariant demands that the worker count is
// invisible in the trace: replication 0 is the traced one and its seed
// does not depend on how the pool is sized.
func TestTraceParallelismInvariant(t *testing.T) {
	base := traceRun(t, 1)
	for _, workers := range []int{2, 4} {
		if got := traceRun(t, workers); !bytes.Equal(base, got) {
			t.Fatalf("workers=%d changed the replication-0 trace (%d vs %d bytes)",
				workers, len(got), len(base))
		}
	}
}

// counterRun performs the fixed-seed replicated simulation that
// -counters exposes and returns the rendered report of replication 0.
func counterRun(t *testing.T, workers int) []byte {
	t.Helper()
	reg := counters.New()
	p := workload.Params{Conversations: 2, ComputeMean: 1140 * des.Microsecond}
	_, rep0, samples := runReplicated(timing.ArchII, false, 1, 42, 3, workers, p, 50*des.Millisecond, nil, reg)
	if rep0.RoundTrips == 0 {
		t.Fatal("replication 0 completed no round trips")
	}
	if len(samples) == 0 {
		t.Fatal("no counter samples returned")
	}
	var buf bytes.Buffer
	if err := counters.WriteText(&buf, samples); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCountersParallelismInvariant is the counter twin of the trace
// invariance test: the registry attaches to replication 0 only, so the
// rendered snapshot is byte-identical at any -parallel setting.
func TestCountersParallelismInvariant(t *testing.T) {
	base := counterRun(t, 1)
	for _, want := range []string{"res.node0.host0.busy", "sends.local", "tcb.ready"} {
		if !bytes.Contains(base, []byte(want)) {
			t.Errorf("counter report missing %q:\n%s", want, base)
		}
	}
	for _, workers := range []int{2, 4} {
		if got := counterRun(t, workers); !bytes.Equal(base, got) {
			t.Fatalf("workers=%d changed the replication-0 counter report:\n%s\n---\n%s",
				workers, got, base)
		}
	}
}
