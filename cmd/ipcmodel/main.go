// Command ipcmodel regenerates the thesis evaluation: it solves the
// chapter 6 GTPN architecture models and prints any table or figure of
// the paper by id.
//
// Usage:
//
//	ipcmodel -list              list experiment ids
//	ipcmodel -id F6.18          regenerate one table/figure
//	ipcmodel -all               regenerate everything
//	ipcmodel -all -parallel 8   ... with eight concurrent experiments
//	ipcmodel -quick ...         trim the sweeps (2 conversations)
//	ipcmodel -cachestats ...    report GTPN solve-cache hits on exit
//	ipcmodel -arch 2 -n 3 -x 2850 -nonlocal
//	                            solve one model point directly
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/gtpn"
	"repro/internal/models"
	"repro/internal/timing"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids")
		id       = flag.String("id", "", "regenerate one experiment by id (e.g. T6.1, F6.18)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		quick    = flag.Bool("quick", false, "trim sweeps for a fast pass")
		plotFigs = flag.Bool("plot", false, "render figure experiments as ASCII charts")
		parallel = flag.Int("parallel", 0, "concurrent experiments for -all (0 = GOMAXPROCS, 1 = sequential)")
		stats    = flag.Bool("cachestats", false, "print GTPN solve-cache statistics to stderr on exit")
		arch     = flag.Int("arch", 0, "solve one point: architecture 1-4")
		n        = flag.Int("n", 1, "solve one point: simultaneous conversations")
		x        = flag.Float64("x", 0, "solve one point: mean server compute time (us)")
		hosts    = flag.Int("hosts", 1, "solve one point: host processors per node")
		nonlocal = flag.Bool("nonlocal", false, "solve one point: non-local conversations")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ipcmodel: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Quick: *quick, Plot: *plotFigs, Parallelism: *parallel}
	if *stats {
		defer func() {
			s := gtpn.SolveCacheStats()
			fmt.Fprintf(os.Stderr, "gtpn solve cache: %d hits, %d misses, %d bypassed, %d entries\n",
				s.Hits, s.Misses, s.Bypassed, s.Entries)
		}()
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case *id != "":
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ipcmodel: unknown experiment %q; valid ids:\n", *id)
			for _, e := range experiments.All() {
				fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ipcmodel: %v\n", err)
			os.Exit(1)
		}
	case *all:
		if err := experiments.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ipcmodel: %v\n", err)
			os.Exit(1)
		}
	case *arch != 0:
		if *arch < 1 || *arch > 4 {
			fmt.Fprintln(os.Stderr, "ipcmodel: -arch must be 1..4")
			flag.Usage()
			os.Exit(2)
		}
		a := timing.Arch(*arch)
		if *nonlocal {
			res, err := models.SolveNonLocal(a, *n, *hosts, *x, models.SolveOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipcmodel: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("architecture %v, non-local, n=%d, X=%.0f us, hosts=%d\n", a, *n, *x, *hosts)
			fmt.Printf("  throughput      %.2f round trips/s\n", res.Throughput*1e6)
			fmt.Printf("  round trip      %.1f us\n", res.RoundTrip)
			fmt.Printf("  server delay Sd %.1f us, client gap Cd %.1f us\n", res.Sd, res.Cd)
			fmt.Printf("  fixed point in %d iterations (states: client %d, server %d)\n",
				res.Iterations, res.ClientStates, res.ServerStates)
			return
		}
		res, err := models.BuildLocal(a, *n, *hosts, *x).Solve(models.SolveOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcmodel: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("architecture %v, local, n=%d, X=%.0f us, hosts=%d\n", a, *n, *x, *hosts)
		fmt.Printf("  throughput %.2f round trips/s\n", res.Throughput*1e6)
		fmt.Printf("  round trip %.1f us\n", res.RoundTrip)
		fmt.Printf("  states     %d\n", res.States)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
