// Command gtpn is a standalone Generalized Timed Petri Net analyzer in
// the mold of the UW package the thesis used: it reads a textual net
// description, builds the reachability graph, solves the embedded Markov
// chain exactly, and reports resource usages, transition firing rates,
// and mean markings. With -sim it cross-checks the solution by Monte
// Carlo simulation.
//
//	gtpn net.gtpn
//	gtpn -sim -ticks 2000000 net.gtpn
//	echo 'place P = 1
//	trans T : P -> P delay 4 resource busy' | gtpn -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/gtpn"
)

func main() {
	var (
		sim      = flag.Bool("sim", false, "also run a Monte Carlo cross-check")
		ticks    = flag.Int64("ticks", 1_000_000, "simulation horizon (with -sim)")
		seed     = flag.Uint64("seed", 1, "simulation seed (with -sim)")
		reps     = flag.Int("reps", 1, "independent simulation replications to average (with -sim)")
		parallel = flag.Int("parallel", 0, "workers for the replications (0 = GOMAXPROCS; any value gives identical results)")
		stats    = flag.Bool("cachestats", false, "print GTPN solve-cache statistics to stderr on exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gtpn [-sim] <file.gtpn | ->")
		os.Exit(2)
	}
	var src io.Reader
	if flag.Arg(0) == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	net, err := gtpn.ParseNet(src)
	if err != nil {
		fatal(err)
	}
	sol, err := net.Solve(gtpn.SolveOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("reachable states: %d (dead: %d, converged: %v)\n\n", sol.States, sol.DeadStates, sol.Converged)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if len(sol.ResourceUsage) > 0 {
		fmt.Fprintln(tw, "RESOURCE\tUSAGE")
		keys := make([]string, 0, len(sol.ResourceUsage))
		for k := range sol.ResourceUsage {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(tw, "%s\t%.8g\n", k, sol.ResourceUsage[k])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintln(tw, "TRANSITION\tRATE (per tick)\tIN FLIGHT (mean)")
	for i := 0; i < net.NumTransitions(); i++ {
		fmt.Fprintf(tw, "%s\t%.8g\t%.6g\n", net.TransName(gtpn.TransID(i)), sol.FiringRate[i], sol.MeanFiring[i])
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "PLACE\tMEAN TOKENS")
	for i := 0; i < net.NumPlaces(); i++ {
		fmt.Fprintf(tw, "%s\t%.6g\n", net.PlaceName(gtpn.PlaceID(i)), sol.MeanTokens[i])
	}
	tw.Flush()

	if *stats {
		defer func() {
			s := gtpn.SolveCacheStats()
			fmt.Fprintf(os.Stderr, "gtpn solve cache: %d hits, %d misses, %d bypassed, %d entries\n",
				s.Hits, s.Misses, s.Bypassed, s.Entries)
		}()
	}

	if *sim {
		res, err := net.SimulateMany(gtpn.SimOptions{
			Seed: *seed, Ticks: *ticks, Replications: *reps, Workers: *parallel,
		})
		if err != nil {
			fatal(err)
		}
		if *reps > 1 {
			fmt.Printf("\nsimulation (%d ticks, seed %d, %d replications):\n", *ticks, *seed, *reps)
		} else {
			fmt.Printf("\nsimulation (%d ticks, seed %d):\n", *ticks, *seed)
		}
		for i := 0; i < net.NumTransitions(); i++ {
			name := net.TransName(gtpn.TransID(i))
			exact := sol.FiringRate[i]
			got := res.FiringRate[i]
			dev := ""
			if exact > 0 {
				dev = fmt.Sprintf("  (%+.2f%%)", (got/exact-1)*100)
			}
			fmt.Printf("  %-16s rate %.8g%s\n", name, got, dev)
		}
		if res.Dead {
			fmt.Printf("  net died at tick %d\n", res.DeadTick)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gtpn:", err)
	os.Exit(1)
}
