// Command busdemo traces smart-bus transactions edge by edge: it runs a
// short scripted scenario — queue manipulation, simple reads/writes, and
// a long block transfer preempted by higher-priority traffic — and
// prints every information cycle with its master, command, and edge
// count, followed by the bus statistics.
package main

import (
	"flag"
	"fmt"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/microcode"
)

func main() {
	blockBytes := flag.Int("block", 200, "size of the demo block transfer in bytes")
	useMicro := flag.Bool("microcode", false, "run the shared memory on the Appendix A microcoded controller")
	flag.Parse()

	eng := des.New(1)
	var b *bus.Bus
	var mc *microcode.Adapter
	if *useMicro {
		mc = microcode.NewAdapter()
		b = bus.NewWith(eng, mc)
		fmt.Println("(shared memory: Appendix A microcoded controller)")
	} else {
		b = bus.New(eng)
	}
	host := b.AttachUnit("host", 2)
	mp := b.AttachUnit("mp", 5)
	nic := b.AttachUnit("nic", 1)

	b.Trace = func(ev bus.TraceEvent) {
		fmt.Printf("%9.2f us  %-7s %-22s addr=%#04x  %d edges\n",
			float64(ev.At)/float64(des.Microsecond), ev.Master, ev.Cmd, ev.Addr, ev.Edges)
	}

	const listAddr = 0x0010
	payload := make([]byte, *blockBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	if mc != nil {
		mc.C.Mem.WriteBlock(0x4000, payload)
	} else {
		b.Ctrl.Mem.WriteBlock(0x4000, payload)
	}

	fmt.Println("-- the MP builds a control-block list atomically --")
	mp.Enqueue(listAddr, 0x0100, func() {
		mp.Enqueue(listAddr, 0x0200, func() {
			mp.First(listAddr, func(e uint16) {
				fmt.Printf("            (first control block returned %#04x)\n", e)
			})
		})
	})
	eng.Run(eng.Now() + des.Millisecond)

	fmt.Println("-- a low-priority NIC block read, preempted by MP queue work --")
	nic.ReadBlock(0x4000, uint16(*blockBytes), func(data []byte) {
		fmt.Printf("            (block read of %d bytes complete, data intact: %v)\n",
			len(data), data[len(data)-1] == byte(len(data)-1))
	})
	eng.At(eng.Now()+3*des.Microsecond, func() {
		mp.Enqueue(listAddr, 0x0300, func() {
			fmt.Println("            (high-priority enqueue done mid-stream)")
		})
	})
	eng.At(eng.Now()+9*des.Microsecond, func() {
		host.Write(0x2000, 0xBEEF, nil)
	})
	eng.Run(eng.Now() + 10*des.Millisecond)

	fmt.Println("-- statistics --")
	fmt.Printf("grants: %d   edges: %d   data words: %d   busy: %.2f us   idle arbitrations: %d\n",
		b.Stats.Grants, b.Stats.Edges, b.Stats.DataWords,
		float64(b.Stats.BusyTicks)/float64(des.Microsecond), b.Stats.IdleArbits)
	for _, c := range bus.Commands() {
		if n := b.Stats.ByCommand[c]; n > 0 {
			fmt.Printf("  %-22s %d\n", c, n)
		}
	}
}
