#!/bin/sh
# Repository health check: build, vet, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass. This is the tier-1
# gate plus the race/bench hygiene added with the parallel experiment
# engine; run it before sending a change.
#
# `./check.sh bench` instead records a benchmark snapshot: it runs the
# solver and serving benchmarks at measurement length and rewrites
# BENCH_gtpn.json (see cmd/ipcbench). Commit the refreshed file whenever
# a change is meant to move the solver or serving-path numbers.
#
# `./check.sh cluster` runs only the three-node cluster smoke,
# `./check.sh openloop` only the open-loop load smoke,
# `./check.sh obsv` only the observability smoke, and
# `./check.sh slo` only the SLO/health-prober smoke — the same blocks
# the full gate ends with.
set -eux

if [ "${1:-}" = "bench" ]; then
    go run ./cmd/ipcbench -out BENCH_gtpn.json
    exit 0
fi

# Cluster smoke: three real ipcd processes on loopback form a ring; the
# same solve through each node must answer byte-identical responses, the
# aggregated metrics view must see every member, and a round-robin
# ipcload pass across all three must finish with zero errors and zero
# cross-node response mismatches (its digest is computed over bodies
# from every target).
cluster_smoke() {
    go build -o /tmp/ipcd.check ./cmd/ipcd
    CLUSTER_PIDS=""
    cleanup_cluster() {
        for p in $CLUSTER_PIDS; do kill "$p" 2>/dev/null || true; done
        CLUSTER_PIDS=""
    }
    trap cleanup_cluster EXIT
    CLUSTER_PEERS="http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083"
    for port in 18081 18082 18083; do
        /tmp/ipcd.check -addr 127.0.0.1:$port -cluster-self "http://127.0.0.1:$port" -peers "$CLUSTER_PEERS" &
        CLUSTER_PIDS="$CLUSTER_PIDS $!"
    done
    for port in 18081 18082 18083; do
        i=0
        until curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            test "$i" -lt 100
            sleep 0.1
        done
    done
    solve_body='{"arch":2,"conversations":1,"server_compute_us":1140}'
    for port in 18081 18082 18083; do
        curl -fsS -X POST -H 'Content-Type: application/json' -d "$solve_body" \
            "http://127.0.0.1:$port/v1/solve" >"/tmp/cluster_solve_$port.json"
    done
    cmp /tmp/cluster_solve_18081.json /tmp/cluster_solve_18082.json
    cmp /tmp/cluster_solve_18081.json /tmp/cluster_solve_18083.json
    curl -fsS "http://127.0.0.1:18081/metrics?scope=cluster" | grep -q '"unreachable":\[\]'
    go run ./cmd/ipcload -targets "$CLUSTER_PEERS" -c 6 -duration 3s
    cleanup_cluster
    trap - EXIT
}

# Open-loop smoke: one real ipcd on loopback, driven by ipcload in
# open-loop mode. The summary line must report BOTH raw and
# coordinated-omission-corrected percentiles, and corrected must
# dominate raw — a request is never sent before its intended arrival
# time, so (completion - intended) >= (completion - send) pointwise.
openloop_smoke() {
    go build -o /tmp/ipcd.check ./cmd/ipcd
    /tmp/ipcd.check -addr 127.0.0.1:18091 &
    OPENLOOP_PID=$!
    cleanup_openloop() {
        kill "$OPENLOOP_PID" 2>/dev/null || true
    }
    trap cleanup_openloop EXIT
    i=0
    until curl -fsS "http://127.0.0.1:18091/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        test "$i" -lt 100
        sleep 0.1
    done
    go run ./cmd/ipcload -addr http://127.0.0.1:18091 -rate 200 -c 4 -duration 3s | tee /tmp/openloop.out
    grep -q '"p50_raw_us"' /tmp/openloop.out
    grep -q '"p50_corrected_us"' /tmp/openloop.out
    raw=$(sed -n 's/.*"p50_raw_us":\([0-9][0-9]*\).*/\1/p' /tmp/openloop.out)
    corr=$(sed -n 's/.*"p50_corrected_us":\([0-9][0-9]*\).*/\1/p' /tmp/openloop.out)
    test -n "$raw"
    test -n "$corr"
    awk -v c="$corr" -v r="$raw" 'BEGIN { exit (c + 0 >= r + 0 && r + 0 >= 0) ? 0 : 1 }'
    cleanup_openloop
    trap - EXIT
}

# Observability smoke: a three-node cluster with per-request tracing,
# JSON access logs and request rings. One solve pushed through a
# follower must (a) leave a merged Chrome trace on the follower whose
# span lanes cover BOTH nodes of the hop, (b) appear in both nodes'
# JSON access logs under the SAME request ID, and (c) show up in the
# cluster-merged /debug/requests view with its routing decision.
obsv_smoke() {
    go build -o /tmp/ipcd.check ./cmd/ipcd
    OBSV_DIR=$(mktemp -d)
    OBSV_PIDS=""
    cleanup_obsv() {
        for p in $OBSV_PIDS; do kill "$p" 2>/dev/null || true; done
        OBSV_PIDS=""
    }
    trap cleanup_obsv EXIT
    OBSV_PEERS="http://127.0.0.1:18101,http://127.0.0.1:18102,http://127.0.0.1:18103"
    for port in 18101 18102 18103; do
        /tmp/ipcd.check -addr 127.0.0.1:$port -cluster-self "http://127.0.0.1:$port" \
            -peers "$OBSV_PEERS" -cluster-replicas -1 -node-name "n$port" \
            -log-format json -trace-dir "$OBSV_DIR/t$port" -trace-every 1 \
            2>"$OBSV_DIR/log$port.json" &
        OBSV_PIDS="$OBSV_PIDS $!"
    done
    for port in 18101 18102 18103; do
        i=0
        until curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            test "$i" -lt 100
            sleep 0.1
        done
    done
    # The same solve through every node: exactly one owns the key, the
    # other two forward (replication is off, so no replica shortcut).
    solve_body='{"arch":2,"conversations":1,"server_compute_us":1140}'
    for port in 18101 18102 18103; do
        curl -fsS -X POST -H 'Content-Type: application/json' -d "$solve_body" \
            "http://127.0.0.1:$port/v1/solve" >/dev/null
    done
    forwarder=""
    for port in 18101 18102 18103; do
        if curl -fsS "http://127.0.0.1:$port/metrics" | grep -q '"forward_served":[1-9]'; then
            forwarder=$port
            break
        fi
    done
    test -n "$forwarder"
    # (a) The forwarder's trace merges the owner's spans: two process
    # lanes (pid 0 local, pid 1 remote) and the owner-side serve span.
    tracefile=$(ls "$OBSV_DIR/t$forwarder"/req-*-solve.json | head -1)
    test "$(grep -o '"pid":[0-9]*' "$tracefile" | sort -u | wc -l)" -ge 2
    grep -q '"name":"peer.rtt"' "$tracefile"
    grep -q '"name":"admission.wait"' "$tracefile"
    # (b) Both nodes' access logs are valid JSON and share the request
    # ID the forwarder minted.
    cat >/tmp/obsv_checklog.go <<'EOF'
// Smoke helper: every line of each file must parse as JSON. With -id,
// at least one access record carrying that id must appear in EVERY
// file; with -print, the first solve access record's id is printed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	id := flag.String("id", "", "require an access record with this id in every file")
	print := flag.Bool("print", false, "print the first solve access record's id")
	flag.Parse()
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		found := false
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var m map[string]any
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				fmt.Fprintf(os.Stderr, "%s: not JSON: %v: %s\n", path, err, sc.Text())
				os.Exit(1)
			}
			if m["msg"] != "access" {
				continue
			}
			if *print && m["route"] == "solve" {
				fmt.Println(m["id"])
				return
			}
			if *id != "" && m["id"] == *id {
				found = true
			}
		}
		f.Close()
		if *id != "" && !found {
			fmt.Fprintf(os.Stderr, "%s: no access record with id %q\n", path, *id)
			os.Exit(1)
		}
	}
}
EOF
    req_id=$(go run /tmp/obsv_checklog.go -print "$OBSV_DIR/log$forwarder.json")
    test -n "$req_id"
    # The ID must appear in the forwarder's log AND in at least one other
    # node's log (the owner inherited it on the forwarded hop).
    go run /tmp/obsv_checklog.go -id "$req_id" "$OBSV_DIR/log$forwarder.json"
    others=0
    for port in 18101 18102 18103; do
        if [ "$port" != "$forwarder" ] &&
            go run /tmp/obsv_checklog.go -id "$req_id" "$OBSV_DIR/log$port.json" 2>/dev/null; then
            others=$((others + 1))
        fi
    done
    test "$others" -ge 1
    # (c) The cluster-merged request ring records the routing decision.
    curl -fsS "http://127.0.0.1:$forwarder/debug/requests?scope=cluster" |
        grep -q '"decision":"forwarded"'
    # The load client's machine-readable summary stays parseable.
    go run ./cmd/ipcload -json -addr "http://127.0.0.1:18101" -c 2 -duration 1s |
        grep -q '"digest":"'
    cleanup_obsv
    trap - EXIT
}

# SLO / health-prober smoke: a three-node cluster with SLO tracking and
# fast peer probing, driven by an open-loop ipcload pass. Killing one
# node hard (SIGKILL — a crash, not a graceful leave) must flip it to
# unreachable in the survivors' ipctop fleet snapshot within the probe
# hysteresis bound, the survivors' merged event journal must record the
# peer_health transitions, and the SLO windows must hold the load's
# samples.
slo_smoke() {
    go build -o /tmp/ipcd.check ./cmd/ipcd
    go build -o /tmp/ipctop.check ./cmd/ipctop
    SLO_PIDS=""
    cleanup_slo() {
        for p in $SLO_PIDS; do kill -9 "$p" 2>/dev/null || true; done
        SLO_PIDS=""
    }
    trap cleanup_slo EXIT
    SLO_PEERS="http://127.0.0.1:18111,http://127.0.0.1:18112,http://127.0.0.1:18113"
    for port in 18111 18112 18113; do
        /tmp/ipcd.check -addr 127.0.0.1:$port -cluster-self "http://127.0.0.1:$port" \
            -peers "$SLO_PEERS" -node-name "n$port" -probe-every 200ms \
            -slo "route=solve,p=99,lat=50ms" &
        SLO_PIDS="$SLO_PIDS $!"
        eval "SLO_PID_$port=$!"
    done
    for port in 18111 18112 18113; do
        i=0
        until curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            test "$i" -lt 100
            sleep 0.1
        done
    done
    # Open-loop load across the fleet; the JSON summary must carry the
    # per-second throughput timeline.
    go run ./cmd/ipcload -targets "$SLO_PEERS" -rate 150 -c 3 -duration 3s -json >/tmp/slo_load.json
    grep -q '"timeline":\[{' /tmp/slo_load.json
    # Crash one node (SIGKILL: no drain, no ring leave) and wait for the
    # survivors' probers to walk it to unreachable.
    kill -9 "$SLO_PID_18113"
    SLO_SURVIVORS="http://127.0.0.1:18111,http://127.0.0.1:18112"
    i=0
    until /tmp/ipctop.check -targets "$SLO_SURVIVORS" -once -json |
        grep -q '"state":"unreachable"'; do
        i=$((i + 1))
        test "$i" -lt 50
        sleep 0.2
    done
    /tmp/ipctop.check -targets "$SLO_PEERS" -once -json >/tmp/slo_top.json
    grep -q '"reachable":false' /tmp/slo_top.json            # the dead target
    grep -q '"type":"peer_health"' /tmp/slo_top.json         # survivor events
    grep -q '"window":"1m"' /tmp/slo_top.json                # SLO windows...
    grep -q '"total":[1-9]' /tmp/slo_top.json                # ...populated
    grep -q '"name":"solve:p99:lat50ms"' /tmp/slo_top.json   # the -slo flag's objective
    cleanup_slo
    trap - EXIT
}

if [ "${1:-}" = "cluster" ]; then
    cluster_smoke
    exit 0
fi

if [ "${1:-}" = "slo" ]; then
    slo_smoke
    exit 0
fi

if [ "${1:-}" = "obsv" ]; then
    obsv_smoke
    exit 0
fi

if [ "${1:-}" = "openloop" ]; then
    openloop_smoke
    exit 0
fi

go build ./...
go vet ./...
# internal/models alone needs ~9 minutes under the race detector on a
# single CPU, right against go test's default 10-minute per-package
# timeout — give the suite explicit headroom so a loaded runner doesn't
# flake.
go test -race -timeout 30m ./...
# Coverage floors: print per-package coverage and hold the contract-
# bearing packages at their recorded floors — internal/gtpn (the
# exactness contract), internal/service (the serving/coalescing
# contract), internal/cluster (the routing byte-identity contract).
# Raise a floor when coverage genuinely improves; never lower one to
# make a change pass.
GTPN_COVER_FLOOR=89
SERVICE_COVER_FLOOR=88
CLUSTER_COVER_FLOOR=84
cover_out=$(go test -cover ./... | tee /dev/stderr)
check_floor() {
    pkg=$1
    floor=$2
    got=$(printf '%s\n' "$cover_out" | awk -v p="$pkg" '$2 ~ p"$" { for (i=1;i<=NF;i++) if ($i ~ /^[0-9.]+%$/) { sub(/%/,"",$i); print $i; exit } }')
    test -n "$got"
    awk -v c="$got" -v f="$floor" 'BEGIN { exit (c+0 >= f+0) ? 0 : 1 }' || {
        echo "check.sh: ${pkg} coverage ${got}% fell below the ${floor}% floor" >&2
        exit 1
    }
}
check_floor 'internal/gtpn' "$GTPN_COVER_FLOOR"
check_floor 'internal/service' "$SERVICE_COVER_FLOOR"
check_floor 'internal/cluster' "$CLUSTER_COVER_FLOOR"
# Fuzz smoke: both fuzz targets run briefly so a crasher or a broken
# corpus fails the gate long before a dedicated fuzzing run.
go test ./internal/gtpn -run '^$' -fuzz FuzzParseNet -fuzztime 20s
go test ./internal/service -run '^$' -fuzz FuzzSolveRequest -fuzztime 20s
go test -run '^$' -bench . -benchtime 1x . ./internal/gtpn ./internal/service
# The benchmark recorder itself must stay runnable (parse + schema).
go run ./cmd/ipcbench -benchtime 1x -bench 'ResolveInstant' -out /dev/null
# Performance regression gate: fresh measurements against the committed
# baseline. ns/op is compared only when the environment matches the
# baseline's; allocs/op always. Refresh the baseline with
# `./check.sh bench` when a change is meant to move the numbers.
go run ./cmd/ipcbench -compare BENCH_gtpn.json -tolerance 0.25
# Observability smoke: the hardware performance-counter report renders
# (the Prometheus exposition and history ring are covered by the
# internal/service unit tests above).
go run ./cmd/ipcsim -arch 2 -n 2 -x 1140 -seconds 1 -counters | grep -q 'res.node0.host0.busy'
cluster_smoke
openloop_smoke
obsv_smoke
slo_smoke
