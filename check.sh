#!/bin/sh
# Repository health check: build, vet, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass. This is the tier-1
# gate plus the race/bench hygiene added with the parallel experiment
# engine; run it before sending a change.
#
# `./check.sh bench` instead records a benchmark snapshot: it runs the
# solver benchmark trajectory at measurement length and rewrites
# BENCH_gtpn.json (see cmd/ipcbench). Commit the refreshed file whenever
# a change is meant to move the solver numbers.
set -eux

if [ "${1:-}" = "bench" ]; then
    go run ./cmd/ipcbench -out BENCH_gtpn.json
    exit 0
fi

go build ./...
go vet ./...
# internal/models alone needs ~9 minutes under the race detector on a
# single CPU, right against go test's default 10-minute per-package
# timeout — give the suite explicit headroom so a loaded runner doesn't
# flake.
go test -race -timeout 30m ./...
# Coverage floor: print per-package coverage and hold internal/gtpn — the
# numerical core the exactness contract lives in — at its recorded floor.
# Raise the floor when coverage genuinely improves; never lower it to
# make a change pass.
GTPN_COVER_FLOOR=89
cover_out=$(go test -cover ./... | tee /dev/stderr)
gtpn_cover=$(printf '%s\n' "$cover_out" | awk '$2 ~ /internal\/gtpn$/ { for (i=1;i<=NF;i++) if ($i ~ /^[0-9.]+%$/) { sub(/%/,"",$i); print $i; exit } }')
test -n "$gtpn_cover"
awk -v c="$gtpn_cover" -v f="$GTPN_COVER_FLOOR" 'BEGIN { exit (c+0 >= f+0) ? 0 : 1 }' || {
    echo "check.sh: internal/gtpn coverage ${gtpn_cover}% fell below the ${GTPN_COVER_FLOOR}% floor" >&2
    exit 1
}
# Fuzz smoke: both fuzz targets run briefly so a crasher or a broken
# corpus fails the gate long before a dedicated fuzzing run.
go test ./internal/gtpn -run '^$' -fuzz FuzzParseNet -fuzztime 20s
go test ./internal/service -run '^$' -fuzz FuzzSolveRequest -fuzztime 20s
go test -run '^$' -bench . -benchtime 1x . ./internal/gtpn
# The benchmark recorder itself must stay runnable (parse + schema).
go run ./cmd/ipcbench -benchtime 1x -bench 'ResolveInstant' -out /dev/null
# Performance regression gate: fresh measurements against the committed
# baseline. ns/op is compared only when the environment matches the
# baseline's; allocs/op always. Refresh the baseline with
# `./check.sh bench` when a change is meant to move the numbers.
go run ./cmd/ipcbench -compare BENCH_gtpn.json -tolerance 0.25
# Observability smoke: the hardware performance-counter report renders
# (the Prometheus exposition and history ring are covered by the
# internal/service unit tests above).
go run ./cmd/ipcsim -arch 2 -n 2 -x 1140 -seconds 1 -counters | grep -q 'res.node0.host0.busy'
