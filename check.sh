#!/bin/sh
# Repository health check: build, vet, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass. This is the tier-1
# gate plus the race/bench hygiene added with the parallel experiment
# engine; run it before sending a change.
#
# `./check.sh bench` instead records a benchmark snapshot: it runs the
# solver benchmark trajectory at measurement length and rewrites
# BENCH_gtpn.json (see cmd/ipcbench). Commit the refreshed file whenever
# a change is meant to move the solver numbers.
set -eux

if [ "${1:-}" = "bench" ]; then
    go run ./cmd/ipcbench -out BENCH_gtpn.json
    exit 0
fi

go build ./...
go vet ./...
# internal/models alone needs ~9 minutes under the race detector on a
# single CPU, right against go test's default 10-minute per-package
# timeout — give the suite explicit headroom so a loaded runner doesn't
# flake.
go test -race -timeout 30m ./...
go test -run '^$' -bench . -benchtime 1x . ./internal/gtpn
# The benchmark recorder itself must stay runnable (parse + schema).
go run ./cmd/ipcbench -benchtime 1x -bench 'ResolveInstant' -out /dev/null
# Performance regression gate: fresh measurements against the committed
# baseline. ns/op is compared only when the environment matches the
# baseline's; allocs/op always. Refresh the baseline with
# `./check.sh bench` when a change is meant to move the numbers.
go run ./cmd/ipcbench -compare BENCH_gtpn.json -tolerance 0.25
# Observability smoke: the hardware performance-counter report renders
# (the Prometheus exposition and history ring are covered by the
# internal/service unit tests above).
go run ./cmd/ipcsim -arch 2 -n 2 -x 1140 -seconds 1 -counters | grep -q 'res.node0.host0.busy'
