#!/bin/sh
# Repository health check: build, vet, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass. This is the tier-1
# gate plus the race/bench hygiene added with the parallel experiment
# engine; run it before sending a change.
set -eux

go build ./...
go vet ./...
go test -race ./...
go test -run '^$' -bench . -benchtime 1x .
