#!/bin/sh
# Repository health check: build, vet, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass. This is the tier-1
# gate plus the race/bench hygiene added with the parallel experiment
# engine; run it before sending a change.
set -eux

go build ./...
go vet ./...
# internal/models alone needs ~9 minutes under the race detector on a
# single CPU, right against go test's default 10-minute per-package
# timeout — give the suite explicit headroom so a loaded runner doesn't
# flake.
go test -race -timeout 30m ./...
go test -run '^$' -bench . -benchtime 1x .
