#!/bin/sh
# Repository health check: build, vet, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass. This is the tier-1
# gate plus the race/bench hygiene added with the parallel experiment
# engine; run it before sending a change.
#
# `./check.sh bench` instead records a benchmark snapshot: it runs the
# solver and serving benchmarks at measurement length and rewrites
# BENCH_gtpn.json (see cmd/ipcbench). Commit the refreshed file whenever
# a change is meant to move the solver or serving-path numbers.
#
# `./check.sh cluster` runs only the three-node cluster smoke, and
# `./check.sh openloop` only the open-loop load smoke — the same blocks
# the full gate ends with.
set -eux

if [ "${1:-}" = "bench" ]; then
    go run ./cmd/ipcbench -out BENCH_gtpn.json
    exit 0
fi

# Cluster smoke: three real ipcd processes on loopback form a ring; the
# same solve through each node must answer byte-identical responses, the
# aggregated metrics view must see every member, and a round-robin
# ipcload pass across all three must finish with zero errors and zero
# cross-node response mismatches (its digest is computed over bodies
# from every target).
cluster_smoke() {
    go build -o /tmp/ipcd.check ./cmd/ipcd
    CLUSTER_PIDS=""
    cleanup_cluster() {
        for p in $CLUSTER_PIDS; do kill "$p" 2>/dev/null || true; done
        CLUSTER_PIDS=""
    }
    trap cleanup_cluster EXIT
    CLUSTER_PEERS="http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083"
    for port in 18081 18082 18083; do
        /tmp/ipcd.check -addr 127.0.0.1:$port -cluster-self "http://127.0.0.1:$port" -peers "$CLUSTER_PEERS" &
        CLUSTER_PIDS="$CLUSTER_PIDS $!"
    done
    for port in 18081 18082 18083; do
        i=0
        until curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            test "$i" -lt 100
            sleep 0.1
        done
    done
    solve_body='{"arch":2,"conversations":1,"server_compute_us":1140}'
    for port in 18081 18082 18083; do
        curl -fsS -X POST -H 'Content-Type: application/json' -d "$solve_body" \
            "http://127.0.0.1:$port/v1/solve" >"/tmp/cluster_solve_$port.json"
    done
    cmp /tmp/cluster_solve_18081.json /tmp/cluster_solve_18082.json
    cmp /tmp/cluster_solve_18081.json /tmp/cluster_solve_18083.json
    curl -fsS "http://127.0.0.1:18081/metrics?scope=cluster" | grep -q '"unreachable":\[\]'
    go run ./cmd/ipcload -targets "$CLUSTER_PEERS" -c 6 -duration 3s
    cleanup_cluster
    trap - EXIT
}

# Open-loop smoke: one real ipcd on loopback, driven by ipcload in
# open-loop mode. The summary line must report BOTH raw and
# coordinated-omission-corrected percentiles, and corrected must
# dominate raw — a request is never sent before its intended arrival
# time, so (completion - intended) >= (completion - send) pointwise.
openloop_smoke() {
    go build -o /tmp/ipcd.check ./cmd/ipcd
    /tmp/ipcd.check -addr 127.0.0.1:18091 &
    OPENLOOP_PID=$!
    cleanup_openloop() {
        kill "$OPENLOOP_PID" 2>/dev/null || true
    }
    trap cleanup_openloop EXIT
    i=0
    until curl -fsS "http://127.0.0.1:18091/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        test "$i" -lt 100
        sleep 0.1
    done
    go run ./cmd/ipcload -addr http://127.0.0.1:18091 -rate 200 -c 4 -duration 3s | tee /tmp/openloop.out
    grep -q '"p50_raw_us"' /tmp/openloop.out
    grep -q '"p50_corrected_us"' /tmp/openloop.out
    raw=$(sed -n 's/.*"p50_raw_us":\([0-9][0-9]*\).*/\1/p' /tmp/openloop.out)
    corr=$(sed -n 's/.*"p50_corrected_us":\([0-9][0-9]*\).*/\1/p' /tmp/openloop.out)
    test -n "$raw"
    test -n "$corr"
    awk -v c="$corr" -v r="$raw" 'BEGIN { exit (c + 0 >= r + 0 && r + 0 >= 0) ? 0 : 1 }'
    cleanup_openloop
    trap - EXIT
}

if [ "${1:-}" = "cluster" ]; then
    cluster_smoke
    exit 0
fi

if [ "${1:-}" = "openloop" ]; then
    openloop_smoke
    exit 0
fi

go build ./...
go vet ./...
# internal/models alone needs ~9 minutes under the race detector on a
# single CPU, right against go test's default 10-minute per-package
# timeout — give the suite explicit headroom so a loaded runner doesn't
# flake.
go test -race -timeout 30m ./...
# Coverage floors: print per-package coverage and hold the contract-
# bearing packages at their recorded floors — internal/gtpn (the
# exactness contract), internal/service (the serving/coalescing
# contract), internal/cluster (the routing byte-identity contract).
# Raise a floor when coverage genuinely improves; never lower one to
# make a change pass.
GTPN_COVER_FLOOR=89
SERVICE_COVER_FLOOR=88
CLUSTER_COVER_FLOOR=84
cover_out=$(go test -cover ./... | tee /dev/stderr)
check_floor() {
    pkg=$1
    floor=$2
    got=$(printf '%s\n' "$cover_out" | awk -v p="$pkg" '$2 ~ p"$" { for (i=1;i<=NF;i++) if ($i ~ /^[0-9.]+%$/) { sub(/%/,"",$i); print $i; exit } }')
    test -n "$got"
    awk -v c="$got" -v f="$floor" 'BEGIN { exit (c+0 >= f+0) ? 0 : 1 }' || {
        echo "check.sh: ${pkg} coverage ${got}% fell below the ${floor}% floor" >&2
        exit 1
    }
}
check_floor 'internal/gtpn' "$GTPN_COVER_FLOOR"
check_floor 'internal/service' "$SERVICE_COVER_FLOOR"
check_floor 'internal/cluster' "$CLUSTER_COVER_FLOOR"
# Fuzz smoke: both fuzz targets run briefly so a crasher or a broken
# corpus fails the gate long before a dedicated fuzzing run.
go test ./internal/gtpn -run '^$' -fuzz FuzzParseNet -fuzztime 20s
go test ./internal/service -run '^$' -fuzz FuzzSolveRequest -fuzztime 20s
go test -run '^$' -bench . -benchtime 1x . ./internal/gtpn ./internal/service
# The benchmark recorder itself must stay runnable (parse + schema).
go run ./cmd/ipcbench -benchtime 1x -bench 'ResolveInstant' -out /dev/null
# Performance regression gate: fresh measurements against the committed
# baseline. ns/op is compared only when the environment matches the
# baseline's; allocs/op always. Refresh the baseline with
# `./check.sh bench` when a change is meant to move the numbers.
go run ./cmd/ipcbench -compare BENCH_gtpn.json -tolerance 0.25
# Observability smoke: the hardware performance-counter report renders
# (the Prometheus exposition and history ring are covered by the
# internal/service unit tests above).
go run ./cmd/ipcsim -arch 2 -n 2 -x 1140 -seconds 1 -counters | grep -q 'res.node0.host0.busy'
cluster_smoke
openloop_smoke
