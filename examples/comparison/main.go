// Comparison: the chapter 6 headline experiment as a program — sweep the
// four node architectures over a range of offered loads and print
// Figure 6.18-style series (message throughput versus offered load for
// local conversations), showing where the message coprocessor and the
// smart bus pay off.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
)

func main() {
	n := flag.Int("n", 3, "simultaneous conversations")
	nonlocal := flag.Bool("nonlocal", false, "non-local conversations")
	flag.Parse()

	archs := []core.Arch{core.Uniprocessor, core.MessageCoprocessor, core.SmartBus, core.PartitionedBus}
	serverMS := []float64{0, 0.57, 1.14, 2.85, 5.7, 11.4, 22.8}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "S (ms)\tload(I)\tI\tII\tIII\tIV\t(round trips/s, n=%d)\n", *n)
	var base []float64
	for _, s := range serverMS {
		row := fmt.Sprintf("%.2f", s)
		var loadI float64
		for i, a := range archs {
			sys := core.New(a)
			p, err := sys.Analyze(core.Workload{
				Conversations:   *n,
				ServerComputeUS: s * 1000,
				NonLocal:        *nonlocal,
			})
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				loadI = p.OfferedLoad
				row += fmt.Sprintf("\t%.3f", loadI)
				base = append(base, p.Throughput)
			}
			row += fmt.Sprintf("\t%.1f", p.Throughput)
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
	fmt.Println("\nreading the series: architecture I is flat; II gains by pipelining host and")
	fmt.Println("MP as load mixes communication and computation; III widens the gain with")
	fmt.Println("smart-bus primitives; IV differs from III only marginally — shared memory")
	fmt.Println("is not the bottleneck (the thesis's §6.9 conclusions).")
}
