// Quickstart: build the thesis's message-coprocessor node architecture,
// predict its IPC throughput analytically, then confirm the prediction
// with the machine-level simulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Architecture II: host + message coprocessor (Figure 6.2).
	sys := core.New(core.MessageCoprocessor, core.WithSeed(7))

	// Three clients converse with three servers; each request costs the
	// server 2.85 ms of computation (a mid-range Unix service, Table 3.6).
	w := core.Workload{Conversations: 3, ServerComputeUS: 2850}

	pred, err := sys.Analyze(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytical model: %.1f round trips/s (round trip %.2f ms, offered load %.2f, %d states)\n",
		pred.Throughput, pred.RoundTripUS/1000, pred.OfferedLoad, pred.States)

	meas, err := sys.Measure(w, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine simulation: %.1f round trips/s over %d rendezvous (round trip %.2f ms)\n",
		meas.Throughput, meas.RoundTrips, meas.RoundTripUS/1000)

	// The same workload on the plain uniprocessor, for contrast.
	uni, err := core.New(core.Uniprocessor).Analyze(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniprocessor baseline: %.1f round trips/s -> coprocessor gain %.2fx\n",
		uni.Throughput, pred.Throughput/uni.Throughput)
}
