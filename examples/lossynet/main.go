// Lossynet: the §4.6 footnote made runnable. The thesis assumed a
// reliable ring and skipped checksums, retransmissions, and timeouts,
// noting their cost "can be easily factored into our experimental
// figures". This example factors them in: remote procedure calls run
// over a ring that drops a quarter of all packets, with the client's
// message coprocessor retransmitting unanswered requests and the
// server's deduplicating them, and reports what reliability costs in
// throughput against the same workload on a perfect ring.
package main

import (
	"fmt"
	"log"

	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/timing"
)

const calls = 300

func run(dropRate float64) (completed, served, retransmits, dropped int64, elapsed float64) {
	eng := des.New(2026)
	cfg := kernel.Config{
		Coprocessor: true,
		Costs:       timing.CostsFor(timing.ArchII, false),
	}
	if dropRate > 0 {
		cfg.RetransmitAfter = 25 * des.Millisecond
		cfg.Costs.Checksum = 600 * des.Microsecond // the Table 3.5 figure
	}
	cl := kernel.NewCluster(eng, 2, cfg)
	defer cl.Shutdown()
	cl.Ring().DropRate = dropRate

	var servedN int64
	cl.Kernel(1).Spawn("server", func(ts *kernel.Task) {
		svc := ts.CreateService("rpc")
		ts.Advertise("rpc", svc)
		if err := ts.Offer(svc); err != nil {
			log.Fatal(err)
		}
		for {
			m, err := ts.Receive(svc)
			if err != nil {
				return
			}
			servedN++
			if err := ts.Reply(m, m.Data[:8]); err != nil {
				return
			}
		}
	})
	var completedN int64
	var doneAt int64
	cl.Kernel(0).Spawn("client", func(ts *kernel.Task) {
		ref, ok := ts.Lookup("rpc")
		for !ok {
			ts.Yield()
			ref, ok = ts.Lookup("rpc")
		}
		for i := 0; i < calls; i++ {
			if _, err := ts.Call(ref, []byte{byte(i), byte(i >> 8)}, nil); err != nil {
				log.Fatal(err)
			}
			completedN++
		}
		doneAt = ts.Now()
	})
	eng.Run(120 * des.Second)
	return completedN, servedN, cl.Kernel(0).Retransmits, cl.Ring().Dropped,
		float64(doneAt) / float64(des.Second)
}

func main() {
	fmt.Printf("%d remote procedure calls, architecture II costs\n\n", calls)
	c0, s0, _, _, t0 := run(0)
	fmt.Printf("reliable ring:   %3d/%d completed, %d served, in %.2fs simulated\n", c0, calls, s0, t0)

	c1, s1, rtx, drop, t1 := run(0.25)
	fmt.Printf("25%% packet loss: %3d/%d completed, %d served (exactly once), in %.2fs simulated\n",
		c1, calls, s1, t1)
	fmt.Printf("                 %d retransmissions covered %d drops; throughput cost %.0f%%\n",
		rtx, drop, (t1/t0-1)*100)
}
