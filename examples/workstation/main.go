// Workstation: the office-workstation setting that motivated the 925
// project, assembled from this library's pieces. The node runs the
// message-based operating system — the IPC kernel on a message
// coprocessor (architecture II costs) plus the trusted system servers
// (file, directory, timer, with the thesis's measured Table 3.6/3.7
// service times) — and an "editor" application works a session against
// them entirely over IPC: make a project directory, create a document,
// write and re-read pages through memory references, nap on the timer.
// The run ends with the §3.5 split of system time between communication
// (the kernel) and computation (the servers).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/servers"
)

func main() {
	node := core.NewNode(core.MessageCoprocessor)
	defer node.Kernel.Shutdown()
	servers.StartAll(node.Kernel)

	node.Kernel.Spawn("editor", func(ts *kernel.Task) {
		c := servers.NewClient(ts)
		start := ts.Now()

		if err := c.Mkdir("thesis"); err != nil {
			log.Fatal(err)
		}
		fd, err := c.Open()
		if err != nil {
			log.Fatal(err)
		}

		// Write four 1 KB pages, then read them back.
		page := make([]byte, 1024)
		var inServers int64
		for i := 0; i < 4; i++ {
			for j := range page {
				page[j] = byte('a' + i)
			}
			t0 := ts.Now()
			if err := c.Write(fd, i*1024, 0x1000, page); err != nil {
				log.Fatal(err)
			}
			inServers += ts.Now() - t0
		}
		for i := 0; i < 4; i++ {
			t0 := ts.Now()
			data, err := c.Read(fd, i*1024, 1024, 0x2000)
			if err != nil {
				log.Fatal(err)
			}
			inServers += ts.Now() - t0
			if data[0] != byte('a'+i) {
				log.Fatalf("page %d corrupted: %q", i, data[:4])
			}
		}

		if err := c.Sleep(2000); err != nil { // a 2 ms think pause
			log.Fatal(err)
		}
		if err := c.Close(fd); err != nil {
			log.Fatal(err)
		}
		if err := c.Rmdir("thesis"); err != nil {
			log.Fatal(err)
		}

		total := ts.Now() - start
		fmt.Printf("session: mkdir, open, 4 writes + 4 reads of 1 KB, sleep, close, rmdir\n")
		fmt.Printf("  wall time        %8.2f ms of simulated time\n", ms(total))
		fmt.Printf("  in file calls    %8.2f ms (server computation + their IPC)\n", ms(inServers))
		fmt.Printf("file round trips ran over architecture II (message coprocessor) costs;\n")
		fmt.Printf("server times are the thesis's Unix measurements (Tables 3.6/3.7), so\n")
		fmt.Printf("system time splits between kernel and servers as §3.5 observed.\n")
	})

	node.Eng.Run(120 * des.Second)
}

func ms(ticks int64) float64 { return float64(ticks) / float64(des.Millisecond) }
