// Smartbus: drive the chapter 5 smart bus directly. The program builds
// the singly-linked circular lists the kernel keeps in shared memory
// (computation list, communication list, free lists) with atomic
// enqueue/first transactions, then shows the bus's defining feature: a
// long, low-priority block transfer being multiplexed with
// higher-priority queue manipulation without aborting — the memory's tag
// table resumes the stream where it left off.
package main

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/des"
)

// Shared-memory layout: list cells at the well-known locations, task
// control blocks and kernel buffers above them (§5.1).
const (
	commListCell = 0x0010 // communication list tail pointer
	compListCell = 0x0012 // computation list tail pointer
	tcb0         = 0x0100 // task control blocks, 0x40 apart
	kbuf0        = 0x4000 // kernel buffers, 40 bytes each
)

func main() {
	eng := des.New(3)
	b := bus.New(eng)
	host := b.AttachUnit("host", 2)
	mp := b.AttachUnit("mp", 4)
	nic := b.AttachUnit("nic", 1)

	fmt.Println("== task makes a communication request: host enqueues its TCB ==")
	host.Enqueue(commListCell, tcb0, func() {
		host.Enqueue(commListCell, tcb0+0x40, func() {
			fmt.Printf("  t=%.2fus  communication list holds 2 TCBs (len=%d)\n",
				us(eng), b.Ctrl.Mem.ListLen(commListCell))
		})
	})
	eng.Run(des.Millisecond)

	fmt.Println("== MP takes the first TCB, processes it, readies the task ==")
	mp.First(commListCell, func(tcbAddr uint16) {
		fmt.Printf("  t=%.2fus  first control block -> %#04x\n", us(eng), tcbAddr)
		mp.Enqueue(compListCell, tcbAddr, func() {
			fmt.Printf("  t=%.2fus  TCB moved to the computation list\n", us(eng))
		})
	})
	eng.Run(2 * des.Millisecond)

	fmt.Println("== NIC DMAs a packet into a kernel buffer while the MP keeps working ==")
	packet := make([]byte, 40)
	for i := range packet {
		packet[i] = byte(0xA0 + i)
	}
	nic.WriteBlock(kbuf0, packet, func() {
		fmt.Printf("  t=%.2fus  40-byte packet landed in kernel buffer\n", us(eng))
	})
	// Mid-stream, the MP performs queue work at higher priority.
	eng.At(eng.Now()+2*des.Microsecond, func() {
		mp.First(compListCell, func(tcbAddr uint16) {
			fmt.Printf("  t=%.2fus  (MP dequeued %#04x between the NIC's data bursts)\n", us(eng), tcbAddr)
		})
	})
	eng.Run(3 * des.Millisecond)

	fmt.Println("== host reads the buffer back through the bus ==")
	host.ReadBlock(kbuf0, 40, func(data []byte) {
		ok := true
		for i := range data {
			if data[i] != packet[i] {
				ok = false
			}
		}
		fmt.Printf("  t=%.2fus  read back %d bytes, intact despite multiplexing: %v\n",
			us(eng), len(data), ok)
	})
	eng.Run(4 * des.Millisecond)

	fmt.Printf("\nbus totals: %d grants, %d edges (%.2f us busy), commands: ",
		b.Stats.Grants, b.Stats.Edges, float64(b.Stats.BusyTicks)/float64(des.Microsecond))
	for _, c := range bus.Commands() {
		if n := b.Stats.ByCommand[c]; n > 0 {
			fmt.Printf("[%s x%d] ", c, n)
		}
	}
	fmt.Println()
}

func us(eng *des.Engine) float64 { return float64(eng.Now()) / float64(des.Microsecond) }
