// Fileserver: the Figure 4.2 scenario on the simulated 925 kernel. An
// editor asks a file server for pages of a file by sending a fixed-size
// message that encloses a memory reference into the editor's own address
// space; the server moves the page directly into that buffer with the
// kernel's memory-move primitive and replies, completing the rendezvous.
// Server computation per request uses the measured Unix file-system
// read/write times of Table 3.7.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/profile"
)

const pageSize = 1024

func main() {
	node := core.NewNode(core.MessageCoprocessor)
	defer node.Kernel.Shutdown()

	// The file server: owns "fs", serves read-page and write-page
	// requests against an in-memory 64-page file.
	node.Kernel.Spawn("fileserver", func(ts *kernel.Task) {
		file := make([]byte, 64*pageSize)
		for i := range file {
			file[i] = byte(i % 251)
		}
		svc := ts.CreateService("fs")
		ts.Advertise("fs", svc)
		if err := ts.Offer(svc); err != nil {
			log.Fatal(err)
		}
		for {
			m, err := ts.Receive(svc)
			if err != nil {
				return
			}
			op, page := m.Data[0], int(m.Data[1])
			off := page * pageSize
			switch op {
			case 'r':
				// Compute like a real file server (Table 3.7), then move
				// the page straight into the editor's buffer.
				ts.Compute(int64(profile.FileServerTime(pageSize, false)) * des.Microsecond)
				if err := ts.MoveTo(m, 0, file[off:off+pageSize]); err != nil {
					log.Fatalf("fileserver: move to editor: %v", err)
				}
			case 'w':
				ts.Compute(int64(profile.FileServerTime(pageSize, true)) * des.Microsecond)
				data, err := ts.MoveFrom(m, 0, pageSize)
				if err != nil {
					log.Fatalf("fileserver: move from editor: %v", err)
				}
				copy(file[off:], data)
			}
			if err := ts.Reply(m, []byte{'k'}); err != nil {
				log.Fatalf("fileserver: reply: %v", err)
			}
		}
	})

	// The editor: reads page 7, modifies it, writes it back, re-reads it.
	node.Kernel.Spawn("editor", func(ts *kernel.Task) {
		fs, ok := ts.Lookup("fs")
		for !ok {
			ts.Yield()
			fs, ok = ts.Lookup("fs")
		}
		buf := 0x1000 // page buffer in the editor's address space

		read := func(page byte) {
			ref := ts.NewMemoryRef(buf, pageSize, kernel.RightWrite)
			if _, err := ts.Call(fs, []byte{'r', page}, ref); err != nil {
				log.Fatalf("editor: read: %v", err)
			}
		}
		write := func(page byte) {
			ref := ts.NewMemoryRef(buf, pageSize, kernel.RightRead)
			if _, err := ts.Call(fs, []byte{'w', page}, ref); err != nil {
				log.Fatalf("editor: write: %v", err)
			}
		}

		start := ts.Now()
		read(7)
		fmt.Printf("read page 7: first bytes % x (%.2f ms)\n",
			ts.Mem[buf:buf+4], float64(ts.Now()-start)/float64(des.Millisecond))

		for i := 0; i < 8; i++ {
			ts.Mem[buf+i] = 'E'
		}
		write(7)
		for i := range ts.Mem[buf : buf+pageSize] {
			ts.Mem[buf+i] = 0
		}
		read(7)
		fmt.Printf("after edit+writeback, page 7 starts %q\n", ts.Mem[buf:buf+8])
		fmt.Printf("three rendezvous took %.2f ms of simulated time\n",
			float64(ts.Now()-start)/float64(des.Millisecond))
	})

	node.Eng.Run(10 * des.Second)
}
